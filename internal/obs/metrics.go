package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// registry holds the trace's named metrics. Lookup is
// read-mostly: the double-checked RLock/Lock pattern keeps the hot
// path to one read-lock and one map read.
type registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	histos   map[string]*Histogram
}

// Counter is a monotonically increasing int64 metric. Safe for
// concurrent Add from many goroutines.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram aggregates observations as count/sum/min/max — enough
// for timing and rate distributions without bucket configuration.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistStats is a histogram snapshot.
type HistStats struct {
	Count         int64
	Sum, Min, Max float64
}

// Mean returns Sum/Count (0 when empty).
func (s HistStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Stats snapshots the histogram (zero value for nil).
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// Counter returns (creating on first use) the named counter, or nil
// on a nil trace.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.reg.mu.RLock()
	c := t.reg.counters[name]
	t.reg.mu.RUnlock()
	if c != nil {
		return c
	}
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if t.reg.counters == nil {
		t.reg.counters = make(map[string]*Counter)
	}
	if c = t.reg.counters[name]; c == nil {
		c = &Counter{}
		t.reg.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil on a
// nil trace.
func (t *Trace) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.reg.mu.RLock()
	g := t.reg.gauges[name]
	t.reg.mu.RUnlock()
	if g != nil {
		return g
	}
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if t.reg.gauges == nil {
		t.reg.gauges = make(map[string]*Gauge)
	}
	if g = t.reg.gauges[name]; g == nil {
		g = &Gauge{}
		t.reg.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram, or
// nil on a nil trace.
func (t *Trace) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.reg.mu.RLock()
	h := t.reg.histos[name]
	t.reg.mu.RUnlock()
	if h != nil {
		return h
	}
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if t.reg.histos == nil {
		t.reg.histos = make(map[string]*Histogram)
	}
	if h = t.reg.histos[name]; h == nil {
		h = &Histogram{}
		t.reg.histos[name] = h
	}
	return h
}

// Downsample reduces a series to at most n points by striding,
// always keeping the last point — used to attach long annealer
// traces (best cost per band) as span attributes of bounded size.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	stride := float64(len(xs)-1) / float64(n-1)
	for i := 0; i < n-1; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	return append(out, xs[len(xs)-1])
}
