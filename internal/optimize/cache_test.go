package optimize

import (
	"math"
	"testing"

	"primopt/internal/cellgen"
	"primopt/internal/evcache"
	"primopt/internal/obs"
	"primopt/internal/primlib"
)

// installTrace makes tr the process-wide default for one test, so the
// deep layers (spice deck counting in particular) report into it.
func installTrace(t *testing.T, tr *obs.Trace) {
	t.Helper()
	old := obs.Default()
	obs.SetDefault(tr)
	t.Cleanup(func() { obs.SetDefault(old) })
}

// newTestEnv builds the evaluation environment the internal tuning
// helpers need, the same way Optimize does.
func newTestEnv(t *testing.T, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias,
	cache *evcache.Cache, tr *obs.Trace) *evalEnv {
	t.Helper()
	sch, err := e.Evaluate(tech, sz, bias, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := e.CostMetrics(tech, sz, sch)
	if err != nil {
		t.Fatal(err)
	}
	return &evalEnv{
		t: tech, e: e, sz: sz, bias: bias, metrics: metrics,
		et: newEvalTracker(tr, cache), cache: cache, tr: tr,
		sem: make(chan struct{}, 4),
	}
}

// TestAllOptionsWiresUntouchedByTuning is the regression test for the
// Selected/AllOptions aliasing bug: tuning used to mutate wire counts
// through the shared layout pointer, corrupting the reported
// selection-phase rows. Generated layouts always start at one wire
// per terminal, so any other value in AllOptions is tuning leakage.
func TestAllOptionsWiresUntouchedByTuning(t *testing.T) {
	e, sz, bias := dpSetup()
	for _, cached := range []bool{false, true} {
		p := Params{Bins: 3, MaxWires: 6, Cons: smallCons()}
		if cached {
			p.Cache = evcache.New()
		}
		res, err := Optimize(tech, e, sz, bias, p)
		if err != nil {
			t.Fatal(err)
		}
		tuned := false
		for _, s := range res.Selected {
			for _, w := range s.Layout.Wires {
				if w.NWires > 1 {
					tuned = true
				}
			}
		}
		if !tuned {
			t.Fatal("tuning never raised a wire count; the test has no teeth")
		}
		for _, o := range res.AllOptions {
			for name, w := range o.Layout.Wires {
				if w.NWires != 1 {
					t.Errorf("cached=%t: AllOptions %s wire %s = %d, want untouched (1)",
						cached, o.Layout.Config.ID(), name, w.NWires)
				}
			}
		}
	}
}

// TestCachedResultsMatchUncached asserts the cache is purely a
// memoization: identical selection, costs, and simulation accounting
// with and without it.
func TestCachedResultsMatchUncached(t *testing.T) {
	e, sz, bias := dpSetup()
	base := Params{Bins: 3, MaxWires: 6, Cons: smallCons()}
	plain, err := Optimize(tech, e, sz, bias, base)
	if err != nil {
		t.Fatal(err)
	}
	withCache := base
	withCache.Cache = evcache.New()
	cached, err := Optimize(tech, e, sz, bias, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Selected) != len(cached.Selected) {
		t.Fatalf("selected: %d vs %d", len(plain.Selected), len(cached.Selected))
	}
	for i := range plain.Selected {
		a, b := plain.Selected[i], cached.Selected[i]
		if a.Layout.Config.ID() != b.Layout.Config.ID() || a.Cost != b.Cost || a.Bin != b.Bin {
			t.Errorf("selected[%d]: %s cost=%v bin=%d vs %s cost=%v bin=%d",
				i, a.Layout.Config.ID(), a.Cost, a.Bin, b.Layout.Config.ID(), b.Cost, b.Bin)
		}
		for name, w := range a.Layout.Wires {
			if bw := b.Layout.Wires[name]; bw == nil || bw.NWires != w.NWires {
				t.Errorf("selected[%d] wire %s: tuned counts differ", i, name)
			}
		}
	}
	if len(plain.AllOptions) != len(cached.AllOptions) {
		t.Fatalf("options: %d vs %d", len(plain.AllOptions), len(cached.AllOptions))
	}
	for i := range plain.AllOptions {
		if plain.AllOptions[i].Cost != cached.AllOptions[i].Cost {
			t.Errorf("option[%d] cost %v vs %v", i, plain.AllOptions[i].Cost, cached.AllOptions[i].Cost)
		}
	}
	if plain.SelectionSims != cached.SelectionSims || plain.TuningSims != cached.TuningSims {
		t.Errorf("sims: %d+%d vs %d+%d",
			plain.SelectionSims, plain.TuningSims, cached.SelectionSims, cached.TuningSims)
	}
	for k, v := range plain.Schematic.Values {
		if cached.Schematic.Values[k] != v {
			t.Errorf("schematic %s: %v vs %v", k, v, cached.Schematic.Values[k])
		}
	}
}

// TestCacheCountersAndNoDuplicateDecks is the accounting contract on
// a traced run: every repeated evaluation request is a cache hit,
// every unique one a miss, and no SPICE deck is ever built twice.
func TestCacheCountersAndNoDuplicateDecks(t *testing.T) {
	e, sz, bias := dpSetup()
	tr := obs.New()
	installTrace(t, tr)
	p := Params{Bins: 3, MaxWires: 6, Cons: smallCons(), Cache: evcache.New()}
	if _, err := Optimize(tech, e, sz, bias, p); err != nil {
		t.Fatal(err)
	}
	evals := tr.Counter("optimize.evals").Value()
	repeats := tr.Counter("optimize.repeat_evals").Value()
	hits := tr.Counter("evcache.hits").Value()
	misses := tr.Counter("evcache.misses").Value()
	if repeats == 0 {
		t.Fatal("no repeated evaluations; the cache has nothing to prove")
	}
	if hits != repeats {
		t.Errorf("evcache.hits = %d, optimize.repeat_evals = %d; want equal", hits, repeats)
	}
	if misses != evals-repeats {
		t.Errorf("evcache.misses = %d, want evals-repeats = %d", misses, evals-repeats)
	}
	// One miss is the schematic reference (no layout, no extraction);
	// every other miss extracts exactly once.
	if extracts := tr.Counter("extract.runs").Value(); extracts != misses-1 {
		t.Errorf("extract.runs = %d, want one per layout miss (%d)", extracts, misses-1)
	}
	if dups := tr.Counter("spice.duplicate_decks").Value(); dups != 0 {
		t.Errorf("spice.duplicate_decks = %d, want 0 with the cache on", dups)
	}
	st := p.Cache.Stats()
	if st.Hits != hits || st.Misses != misses {
		t.Errorf("Stats() = %+v, trace says hits=%d misses=%d", st, hits, misses)
	}
	if st.Entries == 0 || st.Bytes <= 0 {
		t.Errorf("Stats() entries=%d bytes=%d, want positive", st.Entries, st.Bytes)
	}
}

// TestCacheSharedAcrossOptimizeCalls re-runs the same optimization on
// one cache: the second call must add no misses and repeat the exact
// result (the flow relies on this for identical primitive instances).
func TestCacheSharedAcrossOptimizeCalls(t *testing.T) {
	e, sz, bias := dpSetup()
	p := Params{Bins: 3, MaxWires: 6, Cons: smallCons(), Cache: evcache.New()}
	first, err := Optimize(tech, e, sz, bias, p)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := p.Cache.Stats().Misses
	second, err := Optimize(tech, e, sz, bias, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cache.Stats().Misses; got != missesAfterFirst {
		t.Errorf("second run added %d misses, want 0", got-missesAfterFirst)
	}
	if first.TotalSims() != second.TotalSims() {
		t.Errorf("sims accounting drifted across cached runs: %d vs %d",
			first.TotalSims(), second.TotalSims())
	}
	if len(first.Selected) != len(second.Selected) {
		t.Fatalf("selected: %d vs %d", len(first.Selected), len(second.Selected))
	}
	for i := range first.Selected {
		if first.Selected[i].Cost != second.Selected[i].Cost {
			t.Errorf("selected[%d] cost %v vs %v", i, first.Selected[i].Cost, second.Selected[i].Cost)
		}
	}
}

// TestSweepJointErrorLeavesWiresUntouched: an evaluation failure mid
// joint enumeration must not leave the layout at an arbitrary wire
// assignment (it used to mutate in place as it enumerated).
func TestSweepJointErrorLeavesWiresUntouched(t *testing.T) {
	e := primlib.CurrentMirror
	sz := primlib.Sizing{TotalFins: 240, L: 14, NominalI: 50e-6}
	bias := primlib.Bias{Vdd: 0.8, VD: 0.4, CLoad: 2e-15}
	env := newTestEnv(t, e, sz, bias, nil, nil)
	lays, err := e.FindLayouts(tech, sz, &cellgen.Constraints{MinNFin: 8, MaxNFin: 12, MaxM: 4})
	if err != nil || len(lays) == 0 {
		t.Fatalf("layouts: %v (%d)", err, len(lays))
	}
	lay := lays[0]
	var group []primlib.TuningTerm
	for _, g := range correlationGroups(e.Tuning) {
		if len(g) > 1 {
			group = g
			break
		}
	}
	if group == nil {
		t.Fatal("current mirror has no correlated group")
	}
	// Poison the layout so extraction fails on every combination.
	for _, w := range lay.Wires {
		w.Length = -1
		break
	}
	before := map[string]int{}
	for name, w := range lay.Wires {
		before[name] = w.NWires
	}
	if _, err := sweepJoint(env, lay, group, 3); err == nil {
		t.Fatal("poisoned layout evaluated without error")
	}
	for name, w := range lay.Wires {
		if w.NWires != before[name] {
			t.Errorf("wire %s mutated to %d by failed sweep (was %d)", name, w.NWires, before[name])
		}
	}
}

// TestSweepJointTruncationCounter: groups beyond two terminals are
// bounded to a pair, and a traced run must say so instead of silently
// dropping the extra terminal.
func TestSweepJointTruncationCounter(t *testing.T) {
	e, sz, bias := dpSetup()
	tr := obs.New()
	env := newTestEnv(t, e, sz, bias, nil, tr)
	lays, err := e.FindLayouts(tech, sz, smallCons())
	if err != nil || len(lays) == 0 {
		t.Fatalf("layouts: %v (%d)", err, len(lays))
	}
	group := []primlib.TuningTerm{
		{Name: "a", Wires: []string{"s"}},
		{Name: "b", Wires: []string{"d_a"}},
		{Name: "c", Wires: []string{"d_b"}},
	}
	if _, err := sweepJoint(env, lays[0], group, 2); err != nil {
		t.Fatal(err)
	}
	if n := tr.Counter("optimize.joint_group_truncated").Value(); n != 1 {
		t.Errorf("optimize.joint_group_truncated = %d, want 1", n)
	}
	// The dropped third terminal must be untouched.
	if n := lays[0].Wires["d_b"].NWires; n != 1 {
		t.Errorf("truncated terminal's wire count changed to %d", n)
	}
}

// TestAssignBinsDegenerateRatios covers the aspect ratios math.Log
// cannot bin: zero, negative, NaN, and infinite. They must land in
// bin 0 without poisoning the binning of the healthy options (and
// without a NaN reaching Go's unspecified float→int conversion).
func TestAssignBinsDegenerateRatios(t *testing.T) {
	mk := func(ars ...float64) []Option {
		out := make([]Option, len(ars))
		for i, ar := range ars {
			out[i] = Option{Layout: &cellgen.Layout{AspectRatio: ar}}
		}
		return out
	}
	cases := []struct {
		name string
		opts []Option
		want []int
	}{
		{"nan_between_good", mk(0.1, math.NaN(), 1.0), []int{0, 0, 1}},
		{"zero_and_negative", mk(0, -2, 0.1, 1.0), []int{0, 0, 0, 1}},
		{"pos_inf", mk(math.Inf(1), 0.1, 1.0), []int{0, 0, 1}},
		{"all_degenerate", mk(0, math.NaN(), math.Inf(-1)), []int{0, 0, 0}},
		{"single_good_rest_bad", mk(math.NaN(), 0.5), []int{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assignBins(tc.opts, 2)
			for i := range tc.opts {
				if tc.opts[i].Bin != tc.want[i] {
					t.Errorf("opt[%d] (ar=%v) bin = %d, want %d",
						i, tc.opts[i].Layout.AspectRatio, tc.opts[i].Bin, tc.want[i])
				}
			}
		})
	}
}
