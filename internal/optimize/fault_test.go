package optimize

import (
	"context"
	"errors"
	"strings"
	"testing"

	"primopt/internal/fault"
	"primopt/internal/obs"
)

// TestGuardConvertsPanics: the worker-pool guard converts panics to
// labeled errors and counts them, while passing errors through.
func TestGuardConvertsPanics(t *testing.T) {
	tr := obs.New()
	err := guard(tr, "unit test", func() error { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "unit test") ||
		!strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want labeled recovered panic", err)
	}
	if n := tr.Counter("optimize.worker_panics").Value(); n != 1 {
		t.Errorf("optimize.worker_panics = %d, want 1", n)
	}

	sentinel := errors.New("plain failure")
	if err := guard(tr, "x", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("guard altered a plain error: %v", err)
	}
	if err := guard(tr, "x", func() error { return nil }); err != nil {
		t.Errorf("guard invented an error: %v", err)
	}
	// A panic with an error value stays unwrappable.
	werr := guard(tr, "x", func() error { panic(sentinel) })
	if !errors.Is(werr, sentinel) {
		t.Errorf("error-valued panic not unwrappable: %v", werr)
	}
}

// TestOptimizeExtractFaultFailsCleanly: an armed extract site makes
// OptimizeCtx fail with a structured injected error (the flow layer
// above then degrades to the conventional candidate).
func TestOptimizeExtractFaultFailsCleanly(t *testing.T) {
	e, sz, bias := dpSetup()
	inj, err := fault.New(1, fault.SiteExtract+":error@1+")
	if err != nil {
		t.Fatal(err)
	}
	ctx := fault.With(context.Background(), inj)
	_, err = OptimizeCtx(ctx, tech, e, sz, bias, Params{Bins: 2, MaxWires: 4, Cons: smallCons()})
	if err == nil {
		t.Fatal("Optimize succeeded with extraction failing everywhere")
	}
	if !fault.IsInjected(err) {
		t.Errorf("err = %v, want the injected fault in the chain", err)
	}
}

// TestOptimizeCancellation: a dead context aborts before any SPICE
// work with the context error.
func TestOptimizeCancellation(t *testing.T) {
	e, sz, bias := dpSetup()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OptimizeCtx(ctx, tech, e, sz, bias, Params{Bins: 2, MaxWires: 4, Cons: smallCons()})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
