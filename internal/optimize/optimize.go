// Package optimize implements Algorithm 1 of the paper: primitive
// layout optimization. Given a primitive, its sizing, and the bias
// conditions from the circuit-level schematic simulation, it
//
//  1. (primitive selection) generates every legal layout
//     configuration, simulates each one's performance metrics against
//     the extracted parasitics and LDEs, computes the weighted cost of
//     Eq. (5), bins the options by bounding-box aspect ratio, and
//     selects the minimum-cost option per bin; and
//  2. (primitive tuning) sweeps the parallel-wire count of each tuning
//     terminal of the selected options — independently for
//     uncorrelated terminals, jointly for correlated groups — stopping
//     at the cost minimum or the point of maximum curvature for
//     monotone curves.
//
// The result is the small set of high-quality layout choices, with
// different aspect ratios, handed to the placer (Fig. 1).
package optimize

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"primopt/internal/cellgen"
	"primopt/internal/cost"
	"primopt/internal/extract"
	"primopt/internal/numeric"
	"primopt/internal/obs"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
)

// Option is one evaluated layout configuration.
type Option struct {
	Layout *cellgen.Layout
	Ex     *extract.Extracted
	Eval   *primlib.Eval
	Cost   float64 // Eq. (5), percent points
	Values []cost.Value
	Bin    int
}

// Params configures the optimization.
type Params struct {
	Bins     int // aspect-ratio bins / options handed to the placer (default 3)
	MaxWires int // tuning sweep limit per terminal (default 8)
	// MaxJointWires bounds each axis of a correlated-group joint
	// enumeration (default 5).
	MaxJointWires int
	// Workers bounds concurrent simulations (default 8). The paper
	// leans on the independence of the per-option simulations.
	Workers int
	Cons    *cellgen.Constraints
	// Obs, when set, parents the optimize.select / optimize.tune
	// spans; metrics fall back to obs.Default() when nil.
	Obs *obs.Span
}

func (p Params) withDefaults() Params {
	if p.Bins <= 0 {
		p.Bins = 3
	}
	if p.MaxWires <= 0 {
		p.MaxWires = 8
	}
	if p.MaxJointWires <= 0 {
		p.MaxJointWires = 5
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	return p
}

// Result is the outcome of Algorithm 1 for one primitive.
type Result struct {
	Entry     *primlib.Entry
	Sizing    primlib.Sizing
	Bias      primlib.Bias
	Schematic *primlib.Eval
	Metrics   []cost.Metric

	// AllOptions holds every evaluated configuration from the
	// selection step (the paper's Table III rows), sorted by bin then
	// cost.
	AllOptions []Option

	// Selected holds the tuned minimum-cost option per aspect-ratio
	// bin — the choices handed to the placer.
	Selected []Option

	// TotalSims counts SPICE deck runs across all steps (Table V).
	SelectionSims int
	TuningSims    int
}

// TotalSims returns the overall simulation count.
func (r *Result) TotalSims() int { return r.SelectionSims + r.TuningSims }

// Best returns the lowest-cost selected option.
func (r *Result) Best() *Option {
	if len(r.Selected) == 0 {
		return nil
	}
	best := &r.Selected[0]
	for i := range r.Selected[1:] {
		if r.Selected[i+1].Cost < best.Cost {
			best = &r.Selected[i+1]
		}
	}
	return best
}

// Optimize runs Algorithm 1.
func Optimize(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias, p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{Entry: e, Sizing: sz, Bias: bias}
	tr := p.Obs.Trace()
	if tr == nil {
		tr = obs.Default()
	}
	et := newEvalTracker(tr)

	sel := obs.StartSpan(tr, p.Obs, "optimize.select")
	// Line 3 precondition: schematic reference and cost metrics.
	sch, err := e.Evaluate(t, sz, bias, nil, nil)
	if err != nil {
		sel.End()
		return nil, fmt.Errorf("optimize: schematic reference: %w", err)
	}
	res.Schematic = sch
	metrics, err := e.CostMetrics(t, sz, sch)
	if err != nil {
		sel.End()
		return nil, err
	}
	res.Metrics = metrics

	// Step 1 (lines 3–7): evaluate every layout option.
	layouts, err := e.FindLayouts(t, sz, p.Cons)
	if err != nil {
		sel.End()
		return nil, err
	}
	opts := make([]Option, len(layouts))
	errs := make([]error, len(layouts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.Workers)
	for i, lay := range layouts {
		wg.Add(1)
		go func(i int, lay *cellgen.Layout) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opt, err := evaluateOption(t, e, sz, bias, metrics, lay, et)
			if err != nil {
				errs[i] = err
				return
			}
			opts[i] = *opt
		}(i, lay)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			sel.End()
			return nil, fmt.Errorf("optimize: selection: %w", err)
		}
	}
	for i := range opts {
		res.SelectionSims += opts[i].Eval.Sims
	}

	// Line 6: aspect-ratio binning (log scale).
	assignBins(opts, p.Bins)
	sort.SliceStable(opts, func(i, j int) bool {
		if opts[i].Bin != opts[j].Bin {
			return opts[i].Bin < opts[j].Bin
		}
		return opts[i].Cost < opts[j].Cost
	})
	res.AllOptions = opts

	// Line 7: minimum-cost option per bin.
	var selected []Option
	seen := map[int]bool{}
	for _, o := range opts {
		if !seen[o.Bin] {
			seen[o.Bin] = true
			selected = append(selected, o)
		}
	}
	if tr.Enabled() {
		tr.Counter("optimize.sims.selection").Add(int64(res.SelectionSims))
		sel.SetAttr("prim", e.Kind)
		sel.SetAttr("configs", len(layouts))
		sel.SetAttr("bins_filled", len(selected))
		sel.SetAttr("sims", res.SelectionSims)
	}
	sel.End()

	// Step 2 (lines 8–15): tuning each selected option.
	tune := obs.StartSpan(tr, p.Obs, "optimize.tune")
	for i := range selected {
		sims, err := tuneOption(t, e, sz, bias, metrics, &selected[i], p, et)
		if err != nil {
			tune.End()
			return nil, fmt.Errorf("optimize: tuning %s: %w", selected[i].Layout.Config.ID(), err)
		}
		res.TuningSims += sims
	}
	res.Selected = selected
	if tr.Enabled() {
		tr.Counter("optimize.sims.tuning").Add(int64(res.TuningSims))
		ids := make([]string, len(selected))
		for i := range selected {
			ids[i] = selected[i].Layout.Config.ID()
		}
		tune.SetAttr("prim", e.Kind)
		tune.SetAttr("selected", ids)
		tune.SetAttr("sims", res.TuningSims)
	}
	tune.End()
	return res, nil
}

// evalTracker counts layout evaluations and flags repeats — the same
// configuration (config ID + wire counts) simulated more than once —
// which measures how much a result cache would save. Disabled traces
// cost one nil check.
type evalTracker struct {
	tr   *obs.Trace
	mu   sync.Mutex
	seen map[string]bool
}

func newEvalTracker(tr *obs.Trace) *evalTracker {
	if !tr.Enabled() {
		return nil
	}
	return &evalTracker{tr: tr, seen: make(map[string]bool)}
}

func (et *evalTracker) record(lay *cellgen.Layout) {
	if et == nil {
		return
	}
	names := make([]string, 0, len(lay.Wires))
	for w := range lay.Wires {
		names = append(names, w)
	}
	sort.Strings(names)
	key := lay.Config.ID()
	for _, w := range names {
		key += fmt.Sprintf("|%s=%d", w, lay.Wires[w].NWires)
	}
	et.mu.Lock()
	dup := et.seen[key]
	et.seen[key] = true
	et.mu.Unlock()
	et.tr.Counter("optimize.evals").Inc()
	if dup {
		et.tr.Counter("optimize.repeat_evals").Inc()
	}
}

// evaluateOption extracts and simulates one layout configuration.
func evaluateOption(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias,
	metrics []cost.Metric, lay *cellgen.Layout, et *evalTracker) (*Option, error) {
	et.record(lay)
	ex, err := extract.Primitive(t, lay)
	if err != nil {
		return nil, err
	}
	ev, err := e.Evaluate(t, sz, bias, ex, nil)
	if err != nil {
		return nil, fmt.Errorf("config %s: %w", lay.Config.ID(), err)
	}
	c, vals, err := primlib.Cost(metrics, ev)
	if err != nil {
		return nil, err
	}
	return &Option{Layout: lay, Ex: ex, Eval: ev, Cost: c, Values: vals}, nil
}

// assignBins splits options into equal-width bins of log aspect ratio.
func assignBins(opts []Option, bins int) {
	if len(opts) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range opts {
		ar := math.Log(opts[i].Layout.AspectRatio)
		lo = math.Min(lo, ar)
		hi = math.Max(hi, ar)
	}
	if hi <= lo {
		for i := range opts {
			opts[i].Bin = 0
		}
		return
	}
	w := (hi - lo) / float64(bins)
	for i := range opts {
		b := int((math.Log(opts[i].Layout.AspectRatio) - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		opts[i].Bin = b
	}
}

// tuneOption runs the tuning step on one selected option, mutating
// its layout's wire counts and re-evaluating. Returns the number of
// simulations spent.
func tuneOption(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias,
	metrics []cost.Metric, opt *Option, p Params, et *evalTracker) (int, error) {
	sims := 0
	groups := correlationGroups(e.Tuning)
	for _, group := range groups {
		if len(group) == 1 {
			// Lines 9–10: uncorrelated — optimize separately.
			n, s, err := sweepTerminal(t, e, sz, bias, metrics, opt.Layout, group[0], p.MaxWires, et)
			sims += s
			if err != nil {
				return sims, err
			}
			setWires(opt.Layout, group[0], n)
		} else {
			// Lines 11–12: correlated — enumerate combinations.
			s, err := sweepJoint(t, e, sz, bias, metrics, opt.Layout, group, p.MaxJointWires, et)
			sims += s
			if err != nil {
				return sims, err
			}
		}
	}
	// Re-evaluate the tuned configuration.
	tuned, err := evaluateOption(t, e, sz, bias, metrics, opt.Layout, et)
	if err != nil {
		return sims, err
	}
	sims += tuned.Eval.Sims
	tuned.Bin = opt.Bin
	*opt = *tuned
	return sims, nil
}

// correlationGroups partitions tuning terminals into singleton groups
// and correlated clusters.
func correlationGroups(terms []primlib.TuningTerm) [][]primlib.TuningTerm {
	byName := make(map[string]primlib.TuningTerm, len(terms))
	for _, tt := range terms {
		byName[tt.Name] = tt
	}
	used := map[string]bool{}
	var out [][]primlib.TuningTerm
	for _, tt := range terms {
		if used[tt.Name] {
			continue
		}
		group := []primlib.TuningTerm{tt}
		used[tt.Name] = true
		// Follow the correlation chain (practically at most two
		// terminals, per the paper).
		next := tt.CorrelatedWith
		for next != "" && !used[next] {
			ct, ok := byName[next]
			if !ok {
				break
			}
			group = append(group, ct)
			used[next] = true
			next = ct.CorrelatedWith
		}
		out = append(out, group)
	}
	return out
}

// setWires applies a wire count to every cellgen wire of a terminal.
func setWires(lay *cellgen.Layout, term primlib.TuningTerm, n int) {
	for _, w := range term.Wires {
		if we, ok := lay.Wires[w]; ok {
			we.NWires = n
		}
	}
}

// sweepTerminal sweeps one terminal's wire count and returns the
// chosen count per the paper's stopping rule (cost minimum, or max
// curvature for monotone curves).
func sweepTerminal(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias,
	metrics []cost.Metric, lay *cellgen.Layout, term primlib.TuningTerm, maxW int, et *evalTracker) (int, int, error) {
	costs := make([]float64, 0, maxW)
	sims := 0
	orig := map[string]int{}
	for _, w := range term.Wires {
		if we, ok := lay.Wires[w]; ok {
			orig[w] = we.NWires
		}
	}
	defer func() {
		for w, n := range orig {
			lay.Wires[w].NWires = n
		}
	}()
	rising := 0
	for n := 1; n <= maxW; n++ {
		setWires(lay, term, n)
		opt, err := evaluateOption(t, e, sz, bias, metrics, lay, et)
		if err != nil {
			return 1, sims, err
		}
		sims += opt.Eval.Sims
		costs = append(costs, opt.Cost)
		// Early exit once the cost has clearly turned upward.
		if n >= 2 && costs[n-1] > costs[n-2] {
			rising++
			if rising >= 2 {
				break
			}
		} else {
			rising = 0
		}
	}
	return numeric.KneeIndex(costs) + 1, sims, nil
}

// sweepJoint enumerates wire-count combinations for a correlated
// group and applies the best, leaving the layout at the optimum.
func sweepJoint(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias,
	metrics []cost.Metric, lay *cellgen.Layout, group []primlib.TuningTerm, maxW int, et *evalTracker) (int, error) {
	if len(group) > 2 {
		// The paper notes more than two correlated terminals is rare;
		// bound the enumeration by pairing the first two.
		group = group[:2]
	}
	sims := 0
	bestCost := math.Inf(1)
	bestN := make([]int, len(group))
	for i := range bestN {
		bestN[i] = 1
	}
	idx := make([]int, len(group))
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(group) {
			for gi, tt := range group {
				setWires(lay, tt, idx[gi])
			}
			opt, err := evaluateOption(t, e, sz, bias, metrics, lay, et)
			if err != nil {
				return err
			}
			sims += opt.Eval.Sims
			if opt.Cost < bestCost {
				bestCost = opt.Cost
				copy(bestN, idx)
			}
			return nil
		}
		for n := 1; n <= maxW; n++ {
			idx[k] = n
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return sims, err
	}
	for gi, tt := range group {
		setWires(lay, tt, bestN[gi])
	}
	return sims, nil
}
