// Package optimize implements Algorithm 1 of the paper: primitive
// layout optimization. Given a primitive, its sizing, and the bias
// conditions from the circuit-level schematic simulation, it
//
//  1. (primitive selection) generates every legal layout
//     configuration, simulates each one's performance metrics against
//     the extracted parasitics and LDEs, computes the weighted cost of
//     Eq. (5), bins the options by bounding-box aspect ratio, and
//     selects the minimum-cost option per bin; and
//  2. (primitive tuning) sweeps the parallel-wire count of each tuning
//     terminal of the selected options — independently for
//     uncorrelated terminals, jointly for correlated groups — stopping
//     at the cost minimum or the point of maximum curvature for
//     monotone curves.
//
// The result is the small set of high-quality layout choices, with
// different aspect ratios, handed to the placer (Fig. 1).
//
// All SPICE evaluations funnel through a single leaf (evalEnv.eval),
// bounded by the Params.Workers semaphore and — when Params.Cache is
// set — memoized in the shared evaluation cache, so repeated
// configurations (the optimize.repeat_evals of a traced run) are
// served as evcache hits instead of fresh extractions and deck runs.
package optimize

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"primopt/internal/cellgen"
	"primopt/internal/cost"
	"primopt/internal/evcache"
	"primopt/internal/extract"
	"primopt/internal/fault"
	"primopt/internal/numeric"
	"primopt/internal/obs"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
)

// Option is one evaluated layout configuration.
type Option struct {
	Layout *cellgen.Layout
	Ex     *extract.Extracted
	Eval   *primlib.Eval
	Cost   float64 // Eq. (5), percent points
	Values []cost.Value
	Bin    int
}

// Params configures the optimization.
type Params struct {
	Bins     int // aspect-ratio bins / options handed to the placer (default 3)
	MaxWires int // tuning sweep limit per terminal (default 8)
	// MaxJointWires bounds each axis of a correlated-group joint
	// enumeration (default 5).
	MaxJointWires int
	// Workers bounds concurrent simulations (default 8). The paper
	// leans on the independence of the per-option simulations.
	Workers int
	Cons    *cellgen.Constraints
	// Cache, when set, memoizes evaluations across this call and any
	// other Optimize call sharing the same cache (all primitive
	// instances of one flow, typically). Results are identical with
	// and without it; only the amount of repeated SPICE work changes.
	Cache *evcache.Cache
	// Obs, when set, parents the optimize.select / optimize.tune
	// spans; metrics fall back to obs.Default() when nil.
	Obs *obs.Span
}

func (p Params) withDefaults() Params {
	if p.Bins <= 0 {
		p.Bins = 3
	}
	if p.MaxWires <= 0 {
		p.MaxWires = 8
	}
	if p.MaxJointWires <= 0 {
		p.MaxJointWires = 5
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	return p
}

// Result is the outcome of Algorithm 1 for one primitive.
type Result struct {
	Entry     *primlib.Entry
	Sizing    primlib.Sizing
	Bias      primlib.Bias
	Schematic *primlib.Eval
	Metrics   []cost.Metric

	// AllOptions holds every evaluated configuration from the
	// selection step (the paper's Table III rows), sorted by bin then
	// cost. Tuning operates on deep copies, so these rows keep their
	// selection-phase wire counts after Optimize returns.
	AllOptions []Option

	// Selected holds the tuned minimum-cost option per aspect-ratio
	// bin — the choices handed to the placer.
	Selected []Option

	// TotalSims counts SPICE deck runs across all steps (Table V).
	SelectionSims int
	TuningSims    int
}

// TotalSims returns the overall simulation count.
func (r *Result) TotalSims() int { return r.SelectionSims + r.TuningSims }

// Best returns the lowest-cost selected option.
func (r *Result) Best() *Option {
	if len(r.Selected) == 0 {
		return nil
	}
	best := &r.Selected[0]
	for i := range r.Selected[1:] {
		if r.Selected[i+1].Cost < best.Cost {
			best = &r.Selected[i+1]
		}
	}
	return best
}

// Optimize runs Algorithm 1.
func Optimize(t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias, p Params) (*Result, error) {
	return OptimizeCtx(context.Background(), t, e, sz, bias, p)
}

// OptimizeCtx is Optimize bound to a context: every SPICE evaluation
// underneath polls ctx for cancellation, and the context's fault
// injector arms the extract/spice/evcache fault sites.
func OptimizeCtx(ctx context.Context, t *pdk.Tech, e *primlib.Entry, sz primlib.Sizing, bias primlib.Bias, p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{Entry: e, Sizing: sz, Bias: bias}
	tr := p.Obs.Trace()
	if tr == nil {
		tr = obs.Default()
	}
	et := newEvalTracker(tr, p.Cache)

	sel := obs.StartSpan(tr, p.Obs, "optimize.select")
	// Line 3 precondition: schematic reference and cost metrics. The
	// reference deck depends only on (kind, sizing, bias), so with a
	// shared cache identical instances of a circuit reuse it too.
	schKey := evcache.Key(t, e.Kind, sz, bias, nil, nil)
	if p.Cache != nil {
		et.record(schKey)
	}
	schCompute := func() (*evcache.Entry, error) {
		ev, err := e.EvaluateCtx(ctx, t, sz, bias, nil, nil)
		if err != nil {
			return nil, err
		}
		return &evcache.Entry{Eval: ev}, nil
	}
	var schEnt *evcache.Entry
	var err error
	if p.Cache != nil {
		schEnt, err = p.Cache.DoCtx(ctx, tr, schKey, schCompute)
	} else {
		schEnt, err = schCompute()
	}
	if err != nil {
		sel.End()
		return nil, fmt.Errorf("optimize: schematic reference: %w", err)
	}
	res.Schematic = schEnt.Eval
	metrics, err := e.CostMetrics(t, sz, res.Schematic)
	if err != nil {
		sel.End()
		return nil, err
	}
	res.Metrics = metrics

	env := &evalEnv{
		ctx: ctx, inj: fault.From(ctx),
		t: t, e: e, sz: sz, bias: bias, metrics: metrics,
		et: et, cache: p.Cache, tr: tr,
		sem: make(chan struct{}, p.Workers),
	}

	// Step 1 (lines 3–7): evaluate every layout option.
	layouts, err := e.FindLayouts(t, sz, p.Cons)
	if err != nil {
		sel.End()
		return nil, err
	}
	opts := make([]Option, len(layouts))
	errs := make([]error, len(layouts))
	var wg sync.WaitGroup
	for i, lay := range layouts {
		wg.Add(1)
		go func(i int, lay *cellgen.Layout) {
			defer wg.Done()
			errs[i] = guard(tr, "selection config "+lay.Config.ID(), func() error {
				opt, err := env.eval(lay)
				if err != nil {
					return err
				}
				opts[i] = *opt
				return nil
			})
		}(i, lay)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			sel.End()
			return nil, fmt.Errorf("optimize: selection: %w", err)
		}
	}
	for i := range opts {
		res.SelectionSims += opts[i].Eval.Sims
	}

	// Line 6: aspect-ratio binning (log scale).
	assignBins(opts, p.Bins)
	sort.SliceStable(opts, func(i, j int) bool {
		if opts[i].Bin != opts[j].Bin {
			return opts[i].Bin < opts[j].Bin
		}
		return opts[i].Cost < opts[j].Cost
	})
	res.AllOptions = opts

	// Line 7: minimum-cost option per bin.
	var selected []Option
	seen := map[int]bool{}
	for _, o := range opts {
		if !seen[o.Bin] {
			seen[o.Bin] = true
			selected = append(selected, o)
		}
	}
	if tr.Enabled() {
		tr.Counter("optimize.sims.selection").Add(int64(res.SelectionSims))
		sel.SetAttr("prim", e.Kind)
		sel.SetAttr("configs", len(layouts))
		sel.SetAttr("bins_filled", len(selected))
		sel.SetAttr("sims", res.SelectionSims)
	}
	sel.End()

	// Step 2 (lines 8–15): tuning each selected option. The options
	// are independent (distinct aspect-ratio bins), so they tune in
	// parallel; each individual evaluation still respects the Workers
	// bound through env.eval.
	tune := obs.StartSpan(tr, p.Obs, "optimize.tune")
	tuneSims := make([]int, len(selected))
	tuneErrs := make([]error, len(selected))
	var twg sync.WaitGroup
	for i := range selected {
		twg.Add(1)
		go func(i int) {
			defer twg.Done()
			tuneErrs[i] = guard(tr, "tuning "+selected[i].Layout.Config.ID(), func() error {
				var err error
				tuneSims[i], err = tuneOption(env, &selected[i], p)
				return err
			})
		}(i)
	}
	twg.Wait()
	for i, err := range tuneErrs {
		if err != nil {
			tune.End()
			return nil, fmt.Errorf("optimize: tuning %s: %w", selected[i].Layout.Config.ID(), err)
		}
		res.TuningSims += tuneSims[i]
	}
	res.Selected = selected
	if tr.Enabled() {
		tr.Counter("optimize.sims.tuning").Add(int64(res.TuningSims))
		ids := make([]string, len(selected))
		for i := range selected {
			ids[i] = selected[i].Layout.Config.ID()
		}
		tune.SetAttr("prim", e.Kind)
		tune.SetAttr("selected", ids)
		tune.SetAttr("sims", res.TuningSims)
	}
	tune.End()
	return res, nil
}

// evalEnv bundles the invariant inputs of one Optimize call so every
// evaluation site goes through the same leaf. The semaphore bounds
// concurrent extract+SPICE work; it is acquired only inside eval's
// compute step, never while waiting on the cache, so nested
// parallelism (selection, per-option tuning, joint-sweep fan-out)
// cannot deadlock.
type evalEnv struct {
	ctx     context.Context
	inj     *fault.Injector
	t       *pdk.Tech
	e       *primlib.Entry
	sz      primlib.Sizing
	bias    primlib.Bias
	metrics []cost.Metric
	et      *evalTracker
	cache   *evcache.Cache
	tr      *obs.Trace
	sem     chan struct{}
}

// context returns the env's context, defaulting to Background so a
// directly-constructed env (tests) behaves like an unbound Optimize.
func (env *evalEnv) context() context.Context {
	if env.ctx == nil {
		return context.Background()
	}
	return env.ctx
}

// eval extracts and simulates one layout configuration, through the
// cache when one is installed. The compute path reads lay's current
// wire state, which matches the key because each caller owns its
// layout (selection layouts are per-goroutine, tuning works on
// clones).
func (env *evalEnv) eval(lay *cellgen.Layout) (*Option, error) {
	ctx := env.context()
	key := evcache.Key(env.t, env.e.Kind, env.sz, env.bias, lay, nil)
	env.et.record(key)
	compute := func() (*evcache.Entry, error) {
		select {
		case env.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-env.sem }()
		if err := env.inj.Hit(fault.SiteExtract); err != nil {
			return nil, fmt.Errorf("extract %s: %w", lay.Config.ID(), err)
		}
		ex, err := extract.Primitive(env.t, lay)
		if err != nil {
			return nil, err
		}
		ev, err := env.e.EvaluateCtx(ctx, env.t, env.sz, env.bias, ex, nil)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", lay.Config.ID(), err)
		}
		c, vals, err := primlib.Cost(env.metrics, ev)
		if err != nil {
			return nil, err
		}
		return &evcache.Entry{Layout: lay, Ex: ex, Eval: ev, Cost: c, Values: vals}, nil
	}
	var ent *evcache.Entry
	var err error
	if env.cache != nil {
		ent, err = env.cache.DoCtx(ctx, env.tr, key, compute)
	} else {
		ent, err = compute()
	}
	if err != nil {
		return nil, err
	}
	return &Option{Layout: ent.Layout, Ex: ent.Ex, Eval: ent.Eval, Cost: ent.Cost, Values: ent.Values}, nil
}

// evalTracker counts evaluation requests and flags repeats — the same
// snapshot requested more than once. Without a cache the repeats are
// wasted SPICE work (PR 2's measurement); with one, the dedup scope
// follows the cache's sharing scope so that, by construction,
// optimize.repeat_evals == evcache.hits on a traced run. Disabled
// traces cost one nil check.
type evalTracker struct {
	tr    *obs.Trace
	cache *evcache.Cache
	mu    sync.Mutex
	seen  map[string]bool
}

func newEvalTracker(tr *obs.Trace, cache *evcache.Cache) *evalTracker {
	if !tr.Enabled() {
		return nil
	}
	return &evalTracker{tr: tr, cache: cache, seen: make(map[string]bool)}
}

func (et *evalTracker) record(key string) {
	if et == nil {
		return
	}
	var dup bool
	if et.cache != nil {
		dup = et.cache.MarkRequested(key)
	} else {
		et.mu.Lock()
		dup = et.seen[key]
		et.seen[key] = true
		et.mu.Unlock()
	}
	et.tr.Counter("optimize.evals").Inc()
	if dup {
		et.tr.Counter("optimize.repeat_evals").Inc()
	}
}

// assignBins splits options into equal-width bins of log aspect
// ratio. Degenerate aspect ratios (zero, negative, NaN, Inf) have no
// usable log: those options land in bin 0 and are excluded from the
// bin-range computation, so one malformed layout cannot poison the
// binning of the rest (and no NaN ever reaches a float→int
// conversion, whose result Go leaves unspecified).
func assignBins(opts []Option, bins int) {
	if len(opts) == 0 {
		return
	}
	logAR := make([]float64, len(opts))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range opts {
		ar := opts[i].Layout.AspectRatio
		if ar <= 0 || math.IsNaN(ar) || math.IsInf(ar, 0) {
			logAR[i] = math.NaN()
			continue
		}
		l := math.Log(ar)
		logAR[i] = l
		lo = math.Min(lo, l)
		hi = math.Max(hi, l)
	}
	if hi <= lo { // zero or one usable ratio
		for i := range opts {
			opts[i].Bin = 0
		}
		return
	}
	w := (hi - lo) / float64(bins)
	for i := range opts {
		if math.IsNaN(logAR[i]) {
			opts[i].Bin = 0
			continue
		}
		b := int((logAR[i] - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		opts[i].Bin = b
	}
}

// tuneOption runs the tuning step on one selected option. It works on
// a deep copy of the option's layout: the selection-phase row in
// Result.AllOptions shares the original pointer, and the paper's
// Table III data must survive tuning unchanged. On success the option
// is replaced by its tuned re-evaluation; on error it is left as
// selected. Returns the number of simulations spent.
func tuneOption(env *evalEnv, opt *Option, p Params) (int, error) {
	work := opt.Layout.Clone()
	sims := 0
	groups := correlationGroups(env.e.Tuning)
	for _, group := range groups {
		if len(group) == 1 {
			// Lines 9–10: uncorrelated — optimize separately.
			n, s, err := sweepTerminal(env, work, group[0], p.MaxWires)
			sims += s
			if err != nil {
				return sims, err
			}
			setWires(work, group[0], n)
		} else {
			// Lines 11–12: correlated — enumerate combinations.
			s, err := sweepJoint(env, work, group, p.MaxJointWires)
			sims += s
			if err != nil {
				return sims, err
			}
		}
	}
	// Re-evaluate the tuned configuration.
	tuned, err := env.eval(work)
	if err != nil {
		return sims, err
	}
	sims += tuned.Eval.Sims
	tuned.Bin = opt.Bin
	*opt = *tuned
	return sims, nil
}

// correlationGroups partitions tuning terminals into singleton groups
// and correlated clusters.
func correlationGroups(terms []primlib.TuningTerm) [][]primlib.TuningTerm {
	byName := make(map[string]primlib.TuningTerm, len(terms))
	for _, tt := range terms {
		byName[tt.Name] = tt
	}
	used := map[string]bool{}
	var out [][]primlib.TuningTerm
	for _, tt := range terms {
		if used[tt.Name] {
			continue
		}
		group := []primlib.TuningTerm{tt}
		used[tt.Name] = true
		// Follow the correlation chain (practically at most two
		// terminals, per the paper).
		next := tt.CorrelatedWith
		//lint:allow ctxpoll terminates without polling: every iteration marks next in used or breaks, bounded by the terminal count
		for next != "" && !used[next] {
			ct, ok := byName[next]
			if !ok {
				break
			}
			group = append(group, ct)
			used[next] = true
			next = ct.CorrelatedWith
		}
		out = append(out, group)
	}
	return out
}

// setWires applies a wire count to every cellgen wire of a terminal.
func setWires(lay *cellgen.Layout, term primlib.TuningTerm, n int) {
	for _, w := range term.Wires {
		if we, ok := lay.Wires[w]; ok {
			we.NWires = n
		}
	}
}

// sweepTerminal sweeps one terminal's wire count and returns the
// chosen count per the paper's stopping rule (cost minimum, or max
// curvature for monotone curves). The sweep is sequential by nature —
// the early exit depends on the previous costs — but each evaluation
// is a cache-visible leaf, so re-tuning a shared configuration is all
// hits. The layout's wire counts are restored on every path.
func sweepTerminal(env *evalEnv, lay *cellgen.Layout, term primlib.TuningTerm, maxW int) (int, int, error) {
	costs := make([]float64, 0, maxW)
	sims := 0
	orig := map[string]int{}
	for _, w := range term.Wires {
		if we, ok := lay.Wires[w]; ok {
			orig[w] = we.NWires
		}
	}
	defer func() {
		for w, n := range orig {
			lay.Wires[w].NWires = n
		}
	}()
	rising := 0
	for n := 1; n <= maxW; n++ {
		setWires(lay, term, n)
		opt, err := env.eval(lay)
		if err != nil {
			return 1, sims, err
		}
		sims += opt.Eval.Sims
		costs = append(costs, opt.Cost)
		// Early exit once the cost has clearly turned upward.
		if n >= 2 && costs[n-1] > costs[n-2] {
			rising++
			if rising >= 2 {
				break
			}
		} else {
			rising = 0
		}
	}
	return numeric.KneeIndex(costs) + 1, sims, nil
}

// sweepJoint enumerates wire-count combinations for a correlated
// group in parallel — each combination on its own deep copy — and
// applies the best (ties broken by enumeration order, keeping the
// result order-independent). The input layout is only written on
// success, so an evaluation error can no longer leave it at an
// arbitrary mid-enumeration assignment.
func sweepJoint(env *evalEnv, lay *cellgen.Layout, group []primlib.TuningTerm, maxW int) (int, error) {
	if len(group) > 2 {
		// The paper notes more than two correlated terminals is rare;
		// bound the enumeration by pairing the first two. Count the
		// truncation so a traced run shows the dropped terminals.
		env.tr.Counter("optimize.joint_group_truncated").Inc()
		group = group[:2]
	}
	var combos [][]int
	idx := make([]int, len(group))
	var enumerate func(k int)
	enumerate = func(k int) {
		if k == len(group) {
			combos = append(combos, append([]int(nil), idx...))
			return
		}
		for n := 1; n <= maxW; n++ {
			idx[k] = n
			enumerate(k + 1)
		}
	}
	enumerate(0)

	costs := make([]float64, len(combos))
	comboSims := make([]int, len(combos))
	errs := make([]error, len(combos))
	var wg sync.WaitGroup
	for ci, combo := range combos {
		wg.Add(1)
		go func(ci int, combo []int) {
			defer wg.Done()
			errs[ci] = guard(env.tr, fmt.Sprintf("joint sweep %v", combo), func() error {
				work := lay.Clone()
				for gi, tt := range group {
					setWires(work, tt, combo[gi])
				}
				opt, err := env.eval(work)
				if err != nil {
					return err
				}
				comboSims[ci] = opt.Eval.Sims
				costs[ci] = opt.Cost
				return nil
			})
		}(ci, combo)
	}
	wg.Wait()
	sims := 0
	for ci := range combos {
		if errs[ci] != nil {
			return sims, errs[ci]
		}
		sims += comboSims[ci]
	}
	best := 0
	for ci := 1; ci < len(combos); ci++ {
		if costs[ci] < costs[best] {
			best = ci
		}
	}
	for gi, tt := range group {
		setWires(lay, tt, combos[best][gi])
	}
	return sims, nil
}

// guard runs one worker task and converts a panic into that task's
// error, so a crash in a single evaluation fails its task (and is
// counted) instead of killing the process. An injected fault panic
// keeps its identity through the wrap, so fault.IsInjected still
// recognizes it upstream.
func guard(tr *obs.Trace, label string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			tr.Counter("optimize.worker_panics").Inc()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("optimize: %s: recovered panic: %w", label, e)
			} else {
				err = fmt.Errorf("optimize: %s: recovered panic: %v", label, r)
			}
		}
	}()
	return fn()
}
