package optimize

import (
	"math"
	"testing"

	"primopt/internal/cellgen"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
)

var tech = pdk.Default()

func dpSetup() (*primlib.Entry, primlib.Sizing, primlib.Bias) {
	return primlib.DiffPair,
		primlib.Sizing{TotalFins: 960, L: 14},
		primlib.Bias{Vdd: 0.8, VCM: 0.45, VD: 0.4, ITail: 100e-6, CLoad: 5e-15}
}

// smallCons keeps test runtime modest: a handful of configurations.
func smallCons() *cellgen.Constraints {
	return &cellgen.Constraints{MinNFin: 8, MaxNFin: 24, MaxM: 6}
}

func TestOptimizeDiffPair(t *testing.T) {
	e, sz, bias := dpSetup()
	res, err := Optimize(tech, e, sz, bias, Params{Bins: 3, MaxWires: 6, Cons: smallCons()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AllOptions) < 6 {
		t.Fatalf("only %d options evaluated", len(res.AllOptions))
	}
	if len(res.Selected) == 0 || len(res.Selected) > 3 {
		t.Fatalf("selected = %d, want 1..3", len(res.Selected))
	}
	// One option per bin, bins distinct.
	seen := map[int]bool{}
	for _, s := range res.Selected {
		if seen[s.Bin] {
			t.Errorf("bin %d selected twice", s.Bin)
		}
		seen[s.Bin] = true
	}
	// Selected options must not cost more than the bin's cheapest
	// untuned option (tuning only improves).
	for _, s := range res.Selected {
		for _, o := range res.AllOptions {
			if o.Bin == s.Bin && s.Cost > o.Cost+1e-9 {
				t.Errorf("bin %d: tuned cost %.2f above untuned option %.2f (%s)",
					s.Bin, s.Cost, o.Cost, o.Layout.Config.ID())
				break
			}
		}
	}
	if res.SelectionSims == 0 || res.TuningSims == 0 {
		t.Error("sim accounting missing")
	}
	if res.TotalSims() != res.SelectionSims+res.TuningSims {
		t.Error("TotalSims inconsistent")
	}
}

func TestOptimizePrefersCommonCentroidOrInterdigitated(t *testing.T) {
	// The AABB pattern must never win a bin where a symmetric pattern
	// is available: its offset cost term dominates.
	e, sz, bias := dpSetup()
	res, err := Optimize(tech, e, sz, bias, Params{Bins: 3, MaxWires: 4, Cons: smallCons()})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Selected {
		if s.Layout.Config.Pattern == cellgen.PatAABB {
			// Legal only if no alternative existed in that bin.
			alt := false
			for _, o := range res.AllOptions {
				if o.Bin == s.Bin && o.Layout.Config.Pattern != cellgen.PatAABB {
					alt = true
					break
				}
			}
			if alt {
				t.Errorf("AABB won bin %d despite alternatives", s.Bin)
			}
		}
	}
}

func TestTuningIncreasesWireCount(t *testing.T) {
	// Source-mesh tuning should settle above a single wire for this
	// large pair (the R side dominates at n=1).
	e, sz, bias := dpSetup()
	res, err := Optimize(tech, e, sz, bias, Params{Bins: 1, MaxWires: 6, Cons: smallCons()})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no selection")
	}
	if n := best.Layout.Wires["s"].NWires; n < 2 {
		t.Errorf("tuned source wires = %d, want >= 2", n)
	}
}

func TestBestIsMinimumCost(t *testing.T) {
	e, sz, bias := dpSetup()
	res, err := Optimize(tech, e, sz, bias, Params{Bins: 3, MaxWires: 4, Cons: smallCons()})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	for _, s := range res.Selected {
		if s.Cost < best.Cost {
			t.Errorf("Best() %g not minimal (%g available)", best.Cost, s.Cost)
		}
	}
}

func TestCorrelatedJointTuning(t *testing.T) {
	// The current mirror's source and drain terminals are correlated:
	// the optimizer must enumerate jointly and still improve cost.
	e := primlib.CurrentMirror
	sz := primlib.Sizing{TotalFins: 240, L: 14, NominalI: 50e-6}
	bias := primlib.Bias{Vdd: 0.8, VD: 0.4, CLoad: 2e-15}
	res, err := Optimize(tech, e, sz, bias, Params{
		Bins: 2, MaxWires: 4, MaxJointWires: 3,
		Cons: &cellgen.Constraints{MinNFin: 8, MaxNFin: 12, MaxM: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 {
		t.Fatal("nothing selected")
	}
	// Joint tuning burns more sims than a single independent sweep
	// would (3x3 grid at minimum).
	if res.TuningSims < 9 {
		t.Errorf("joint tuning sims = %d, expected >= 9", res.TuningSims)
	}
}

func TestCorrelationGroups(t *testing.T) {
	terms := []primlib.TuningTerm{
		{Name: "a"},
		{Name: "b", CorrelatedWith: "c"},
		{Name: "c", CorrelatedWith: "b"},
	}
	groups := correlationGroups(terms)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0]) != 1 || groups[0][0].Name != "a" {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if len(groups[1]) != 2 {
		t.Errorf("group 1 = %+v", groups[1])
	}
	// Dangling correlation target: stays a singleton without panic.
	terms2 := []primlib.TuningTerm{{Name: "x", CorrelatedWith: "ghost"}}
	if g := correlationGroups(terms2); len(g) != 1 || len(g[0]) != 1 {
		t.Errorf("dangling correlation mishandled: %+v", g)
	}
}

func TestAssignBins(t *testing.T) {
	mk := func(ar float64) Option {
		return Option{Layout: &cellgen.Layout{AspectRatio: ar}}
	}
	opts := []Option{mk(0.03), mk(0.1), mk(0.7), mk(0.05), mk(0.5)}
	assignBins(opts, 3)
	if opts[0].Bin != 0 {
		t.Errorf("smallest AR bin = %d", opts[0].Bin)
	}
	if opts[2].Bin != 2 {
		t.Errorf("largest AR bin = %d", opts[2].Bin)
	}
	for _, o := range opts {
		if o.Bin < 0 || o.Bin > 2 {
			t.Errorf("bin out of range: %d", o.Bin)
		}
	}
	// Degenerate: all the same ratio.
	same := []Option{mk(0.5), mk(0.5)}
	assignBins(same, 3)
	if same[0].Bin != 0 || same[1].Bin != 0 {
		t.Error("identical ARs should share bin 0")
	}
	assignBins(nil, 3) // must not panic
}

func TestSchematicCostNearZeroAfterOptimize(t *testing.T) {
	// The whole point: the best tuned option's cost is small —
	// metrics within a few percent of schematic.
	e, sz, bias := dpSetup()
	res, err := Optimize(tech, e, sz, bias, Params{Bins: 3, MaxWires: 8, Cons: smallCons()})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best.Cost > 60 {
		t.Errorf("best tuned cost = %.1f%%, want modest", best.Cost)
	}
	// And it must improve on the worst option substantially.
	worst := 0.0
	for _, o := range res.AllOptions {
		worst = math.Max(worst, o.Cost)
	}
	if worst <= best.Cost {
		t.Error("optimization did not separate best from worst")
	}
}

func TestOptimizeErrorPropagation(t *testing.T) {
	// An unfactorable fin count fails cleanly.
	e, _, bias := dpSetup()
	if _, err := Optimize(tech, e, primlib.Sizing{TotalFins: 37, L: 14}, bias, Params{}); err == nil {
		t.Error("unfactorable sizing accepted")
	}
	// A broken bias (no tail current for a mirror) fails in the
	// schematic reference with a useful error.
	if _, err := Optimize(tech, primlib.CurrentMirror,
		primlib.Sizing{TotalFins: 240, L: 14}, primlib.Bias{Vdd: 0.8, VD: 0.4}, Params{}); err == nil {
		t.Error("mirror without reference current accepted")
	}
}

func TestSweepJointTruncatesLargeGroups(t *testing.T) {
	// Groups beyond two correlated terminals are bounded (the paper
	// notes more than two is rare); the enumeration must stay finite
	// and still improve the layout.
	terms := []primlib.TuningTerm{
		{Name: "a", Wires: []string{"s"}, CorrelatedWith: "b"},
		{Name: "b", Wires: []string{"d_a"}, CorrelatedWith: "c"},
		{Name: "c", Wires: []string{"d_b"}, CorrelatedWith: "a"},
	}
	groups := correlationGroups(terms)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %+v", groups)
	}
}
