package pdk

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestLayerByName(t *testing.T) {
	tech := Default()
	l, err := tech.LayerByName("M3")
	if err != nil || l != 2 {
		t.Errorf("M3 -> %d, %v", l, err)
	}
	if _, err := tech.LayerByName("M99"); err == nil {
		t.Error("unknown layer accepted")
	}
}

func TestFinW(t *testing.T) {
	tech := Default()
	want := float64(2*tech.FinHeight + tech.FinThick)
	if got := tech.FinW(); got != want {
		t.Errorf("FinW = %g, want %g", got, want)
	}
}

func TestWireResScaling(t *testing.T) {
	tech := Default()
	r1 := tech.WireRes(0, 1000, 1)
	r2 := tech.WireRes(0, 2000, 1)
	if r2 <= r1 {
		t.Error("resistance must grow with length")
	}
	rp := tech.WireRes(0, 1000, 4)
	if rp >= r1 {
		t.Error("parallel wires must reduce resistance")
	}
	if got := r1 / rp; got < 3.99 || got > 4.01 {
		t.Errorf("4 parallel wires should quarter R, ratio %g", got)
	}
	// n < 1 clamps to 1.
	if tech.WireRes(0, 1000, 0) != r1 {
		t.Error("n=0 should behave as n=1")
	}
}

func TestWireCapScaling(t *testing.T) {
	tech := Default()
	c1 := tech.WireCap(0, 1000, 1)
	c4 := tech.WireCap(0, 1000, 4)
	if c4/c1 < 3.99 || c4/c1 > 4.01 {
		t.Errorf("4 parallel wires should quadruple C, ratio %g", c4/c1)
	}
	if tech.WireCap(0, 2000, 1) <= c1 {
		t.Error("capacitance must grow with length")
	}
	// Sanity magnitude: 1 µm of M1 should be femtofarad-class (0.01–1 fF).
	if c1 < 1e-17 || c1 > 1e-15 {
		t.Errorf("1 µm M1 cap = %g F, outside sane range", c1)
	}
}

func TestUpperLayersLessResistive(t *testing.T) {
	tech := Default()
	for l := 1; l < tech.NumLayers(); l++ {
		lo := tech.WireRes(Layer(l-1), 10000, 1)
		hi := tech.WireRes(Layer(l), 10000, 1)
		if hi > lo {
			t.Errorf("layer %d more resistive per length than layer %d", l, l-1)
		}
	}
}

func TestViaResCap(t *testing.T) {
	tech := Default()
	r13 := tech.ViaRes(0, 2, 1)
	want := tech.Vias[0].Res + tech.Vias[1].Res
	if r13 != want {
		t.Errorf("ViaRes(0,2) = %g, want %g", r13, want)
	}
	// Symmetric in argument order.
	if tech.ViaRes(2, 0, 1) != r13 {
		t.Error("ViaRes not symmetric")
	}
	// Parallel cuts divide R.
	if got := r13 / tech.ViaRes(0, 2, 2); got < 1.99 || got > 2.01 {
		t.Errorf("2 cuts should halve via R, ratio %g", got)
	}
	// Same layer: zero.
	if tech.ViaRes(1, 1, 1) != 0 || tech.ViaCap(1, 1, 1) != 0 {
		t.Error("same-layer via should be free")
	}
	if tech.ViaCap(0, 2, 2) != 2*(tech.Vias[0].Cap+tech.Vias[1].Cap) {
		t.Error("ViaCap cuts scaling wrong")
	}
}

func TestValidateCatchesBrokenTech(t *testing.T) {
	mk := func(mut func(*Tech)) *Tech {
		tech := Default()
		mut(tech)
		return tech
	}
	bad := []*Tech{
		mk(func(t *Tech) { t.FinPitch = 0 }),
		mk(func(t *Tech) { t.Metals = t.Metals[:1] }),
		mk(func(t *Tech) { t.Vias = t.Vias[:1] }),
		mk(func(t *Tech) { t.Metals[0].Width = 0 }),
		mk(func(t *Tech) { t.Metals[0].Width = t.Metals[0].Pitch + 1 }),
		mk(func(t *Tech) { t.Metals[0].SheetRes = -1 }),
		mk(func(t *Tech) { t.Metals[3].SheetRes = 100 }), // increases upward
		mk(func(t *Tech) { t.Cox = 0 }),
	}
	for i, tech := range bad {
		if err := tech.Validate(); err == nil {
			t.Errorf("broken tech %d passed validation", i)
		}
	}
}

// Property: RC product of a wire is invariant under the parallel-wire
// count (R scales 1/n, C scales n) — this is exactly the trade-off the
// paper's tuning step explores.
func TestParallelWireRCInvariant(t *testing.T) {
	tech := Default()
	f := func(lraw, nraw, lenraw uint16) bool {
		l := Layer(int(lraw) % tech.NumLayers())
		n := int(nraw)%8 + 1
		length := int64(lenraw)%5000 + 100
		rc1 := tech.WireRes(l, length, 1) * tech.WireCap(l, length, 1)
		rcn := tech.WireRes(l, length, n) * tech.WireCap(l, length, n)
		return rcn > rc1*0.999 && rcn < rc1*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFingerprint pins the content-addressing contract the evaluation
// cache's disk tier depends on: the fingerprint is a pure function of
// the technology parameters, not of pointer identity, and every
// parameter perturbation — electrical, geometric, or in the metal
// stack — moves it.
func TestFingerprint(t *testing.T) {
	base := Default().Fingerprint()
	if base == "" || base == "none" {
		t.Fatalf("default fingerprint = %q", base)
	}
	if Default().Fingerprint() != base {
		t.Error("fingerprint differs across identical Tech values")
	}
	var nilTech *Tech
	if nilTech.Fingerprint() != "none" {
		t.Error("nil tech fingerprint not the sentinel")
	}
	mutations := []func(*Tech){
		func(tc *Tech) { tc.Name = "synth7b" },
		func(tc *Tech) { tc.VthN += 0.01 },
		func(tc *Tech) { tc.U0P *= 1.001 },
		func(tc *Tech) { tc.FinPitch++ },
		func(tc *Tech) { tc.Metals[1].SheetRes *= 2 },
		func(tc *Tech) { tc.Vias[0].Res += 1 },
		func(tc *Tech) { tc.Metals = tc.Metals[:len(tc.Metals)-1] },
	}
	for i, mut := range mutations {
		tc := Default()
		mut(tc)
		if tc.Fingerprint() == base {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}
