// Package pdk defines the simulated FinFET process design kit used
// throughout the flow. The paper ran on a proprietary sub-10nm
// commercial PDK; this package substitutes a synthetic but internally
// consistent technology with the properties the methodology actually
// consumes:
//
//   - gridded geometry (fin pitch, poly pitch, metal track pitch) so
//     that "wider wires" are realized as counts of parallel tracks;
//   - a multi-layer metal stack with per-layer sheet resistance and
//     area/fringe capacitance, with resistive lower layers (the reason
//     mesh routing and parallel wires matter in FinFET nodes);
//   - via resistance per cut;
//   - FinFET electrical constants (Cox, mobility, Vth) and LDE
//     coefficients (LOD, WPE) consumed by internal/device and
//     internal/lde.
//
// All lengths are nanometers; resistances ohms; capacitances farads.
package pdk

import (
	"fmt"
	"hash/fnv"
)

// Layer identifies a routing layer. Layer 0 is M1; via v(i) connects
// layer i to layer i+1.
type Layer int

// MetalLayer describes one routing layer of the stack.
type MetalLayer struct {
	Name       string
	Pitch      int64   // track pitch, nm
	Width      int64   // default (minimum) wire width, nm
	SheetRes   float64 // ohm/square at minimum width
	AreaCap    float64 // F per nm^2 of wire area (to substrate/adjacent)
	FringeCap  float64 // F per nm of wire edge length
	Horizontal bool    // preferred routing direction
}

// Via describes the cut connecting layer i to layer i+1.
type Via struct {
	Res float64 // ohm per cut
	Cap float64 // F per cut (small)
}

// Tech is the full simulated technology.
type Tech struct {
	Name string

	// FinFET geometry.
	FinPitch  int64 // nm between fins
	FinHeight int64 // nm fin height
	FinThick  int64 // nm fin thickness
	PolyPitch int64 // nm contacted poly pitch (CPP)
	GateL     int64 // nm nominal drawn gate length

	// Electrical constants for the compact model.
	Cox      float64 // F/nm^2 effective gate oxide capacitance
	U0N, U0P float64 // nm^2/(V*s) low-field mobility (per nm width units)
	VthN     float64 // V NMOS threshold
	VthP     float64 // V PMOS threshold (magnitude)
	LambdaN  float64 // 1/V channel-length modulation
	LambdaP  float64
	SSn      float64 // subthreshold slope factor n (Id ~ exp(Vgs/(n*Vt)))
	Vdd      float64 // nominal supply

	// Precision poly resistor constants.
	PolySheetRes float64 // ohm/square
	PolyCapDens  float64 // F/nm^2 body capacitance to substrate

	// Junction/overlap capacitance constants.
	CjArea   float64 // F/nm^2 junction area cap
	CjPerim  float64 // F/nm junction perimeter cap
	CovPerW  float64 // F/nm of gate width, overlap cap per side
	DiffExt  int64   // nm diffusion extension beyond last gate (shared side: 0 extra)
	DiffExtE int64   // nm diffusion extension at an unshared (end) diffusion

	// LDE coefficients (consumed by internal/lde).
	LODVthRef    float64 // V reference ΔVth amplitude for LOD stress
	LODSARef     int64   // nm reference SA distance for LOD
	LODMuFrac    float64 // fractional mobility change amplitude from LOD
	WPEVthRef    float64 // V reference ΔVth amplitude for WPE
	WPEDistRef   int64   // nm characteristic decay distance to well edge
	WellMargin   int64   // nm well enclosure beyond diffusion
	SigmaVth1F   float64 // V random Vth sigma for a single fin-finger (AVt analogue)
	GradVthPerNm float64 // V/nm linear process gradient across the cell (drives
	// centroid-separation mismatch; the reason common-centroid
	// patterns exist)

	Metals []MetalLayer
	Vias   []Via // Vias[i] connects Metals[i] and Metals[i+1]
}

// Default returns the synthetic 7nm-class FinFET technology used by
// every experiment in this repository. Values are chosen to be
// representative of published 7nm-class numbers (fin pitch 30nm, CPP
// 54nm, resistive M1/M2) rather than to match any real foundry.
func Default() *Tech {
	t := &Tech{
		Name:      "synth7",
		FinPitch:  30,
		FinHeight: 42,
		FinThick:  7,
		PolyPitch: 54,
		GateL:     14,

		// Cox ~ 17.5 fF/um^2 = 17.5e-15 F / 1e6 nm^2.
		Cox:  17.5e-21,
		U0N:  4.0e16, // chosen so a 96-fin device gives mA-class currents
		U0P:  1.6e16,
		VthN: 0.32,
		VthP: 0.34,
		// Short-channel CLM at L=14nm: intrinsic gains of a few tens,
		// matching published FinFET analog behaviour (and making drain
		// resistance visible to the primitive metrics, as in the
		// paper's Table IV).
		LambdaN: 0.25,
		LambdaP: 0.30,
		SSn:     1.35,
		Vdd:     0.8,

		PolySheetRes: 200,
		PolyCapDens:  0.06e-21,

		CjArea:   1.1e-21,
		CjPerim:  0.08e-18,
		CovPerW:  0.20e-18,
		DiffExt:  27, // shared diffusion: half CPP
		DiffExtE: 60,

		LODVthRef:    0.010,
		LODSARef:     60,
		LODMuFrac:    0.05,
		WPEVthRef:    0.004,
		WPEDistRef:   250,
		WellMargin:   150,
		SigmaVth1F:   0.012,
		GradVthPerNm: 5e-8,

		Metals: []MetalLayer{
			{Name: "M1", Pitch: 40, Width: 20, SheetRes: 18.0, AreaCap: 0.045e-21, FringeCap: 0.045e-18, Horizontal: false},
			{Name: "M2", Pitch: 40, Width: 20, SheetRes: 14.0, AreaCap: 0.042e-21, FringeCap: 0.042e-18, Horizontal: true},
			{Name: "M3", Pitch: 44, Width: 22, SheetRes: 9.0, AreaCap: 0.040e-21, FringeCap: 0.040e-18, Horizontal: false},
			{Name: "M4", Pitch: 48, Width: 24, SheetRes: 5.0, AreaCap: 0.038e-21, FringeCap: 0.038e-18, Horizontal: true},
			{Name: "M5", Pitch: 64, Width: 32, SheetRes: 2.2, AreaCap: 0.035e-21, FringeCap: 0.035e-18, Horizontal: false},
			{Name: "M6", Pitch: 80, Width: 40, SheetRes: 1.0, AreaCap: 0.032e-21, FringeCap: 0.032e-18, Horizontal: true},
		},
		Vias: []Via{
			{Res: 22, Cap: 0.02e-18},
			{Res: 16, Cap: 0.02e-18},
			{Res: 12, Cap: 0.03e-18},
			{Res: 8, Cap: 0.03e-18},
			{Res: 5, Cap: 0.04e-18},
		},
	}
	return t
}

// Fingerprint returns a short content hash over every technology
// parameter — the PDK/model component of a content-addressed cache
// key. Two Tech values with identical parameters fingerprint
// identically regardless of pointer identity; any parameter change
// (a retargeted mobility, an extra metal layer) produces a different
// fingerprint, so cached evaluations can never cross PDK variants.
// The hash covers the rendered value of every exported field (all
// Tech state is exported value data), making it a pure function of
// the technology content.
func (t *Tech) Fingerprint() string {
	if t == nil {
		return "none"
	}
	h := fnv.New64a()
	//lint:allow errflow hash.Hash.Write never errors, so Fprintf into it cannot either
	fmt.Fprintf(h, "%+v", *t)
	return fmt.Sprintf("%016x", h.Sum64())
}

// NumLayers returns the number of routing layers.
func (t *Tech) NumLayers() int { return len(t.Metals) }

// LayerByName returns the layer index for a name like "M3".
func (t *Tech) LayerByName(name string) (Layer, error) {
	for i, m := range t.Metals {
		if m.Name == name {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("pdk: unknown layer %q", name)
}

// FinW returns the effective electrical width of a single fin in nm:
// two sidewalls plus the top.
func (t *Tech) FinW() float64 { return float64(2*t.FinHeight + t.FinThick) }

// WireRes returns the resistance of a route of the given length on
// layer l realized as n parallel minimum-width tracks. n < 1 is
// treated as 1.
func (t *Tech) WireRes(l Layer, lengthNM int64, n int) float64 {
	if n < 1 {
		n = 1
	}
	m := t.Metals[l]
	squares := float64(lengthNM) / float64(m.Width)
	return m.SheetRes * squares / float64(n)
}

// WireCap returns the total capacitance (area + fringe, both edges) of
// a route of the given length on layer l realized as n parallel
// minimum-width tracks. Parallel tracks each contribute full area and
// fringe; this slightly overestimates inner-track fringe, which is the
// conservative direction for the C side of the RC trade-off.
func (t *Tech) WireCap(l Layer, lengthNM int64, n int) float64 {
	if n < 1 {
		n = 1
	}
	m := t.Metals[l]
	area := float64(lengthNM) * float64(m.Width) * m.AreaCap
	fringe := 2 * float64(lengthNM) * m.FringeCap
	return float64(n) * (area + fringe)
}

// ViaRes returns the resistance of the via stack from layer a to layer
// b with n parallel cuts at each level.
func (t *Tech) ViaRes(a, b Layer, n int) float64 {
	if n < 1 {
		n = 1
	}
	if a > b {
		a, b = b, a
	}
	r := 0.0
	for i := a; i < b; i++ {
		r += t.Vias[i].Res / float64(n)
	}
	return r
}

// ViaCap returns the capacitance of the via stack from layer a to b
// with n parallel cuts at each level.
func (t *Tech) ViaCap(a, b Layer, n int) float64 {
	if n < 1 {
		n = 1
	}
	if a > b {
		a, b = b, a
	}
	c := 0.0
	for i := a; i < b; i++ {
		c += t.Vias[i].Cap * float64(n)
	}
	return c
}

// Validate checks internal consistency of the technology description.
func (t *Tech) Validate() error {
	if t.FinPitch <= 0 || t.PolyPitch <= 0 || t.GateL <= 0 {
		return fmt.Errorf("pdk %s: non-positive geometry", t.Name)
	}
	if len(t.Metals) < 2 {
		return fmt.Errorf("pdk %s: need at least 2 metal layers", t.Name)
	}
	if len(t.Vias) != len(t.Metals)-1 {
		return fmt.Errorf("pdk %s: have %d vias for %d metals", t.Name, len(t.Vias), len(t.Metals))
	}
	for i, m := range t.Metals {
		if m.Pitch <= 0 || m.Width <= 0 || m.Width > m.Pitch {
			return fmt.Errorf("pdk %s: layer %s bad pitch/width", t.Name, m.Name)
		}
		if m.SheetRes <= 0 || m.AreaCap <= 0 || m.FringeCap <= 0 {
			return fmt.Errorf("pdk %s: layer %s non-positive RC", t.Name, m.Name)
		}
		if i > 0 && m.SheetRes > t.Metals[i-1].SheetRes {
			return fmt.Errorf("pdk %s: sheet resistance must not increase with layer (%s)", t.Name, m.Name)
		}
	}
	if t.Cox <= 0 || t.U0N <= 0 || t.U0P <= 0 || t.Vdd <= 0 {
		return fmt.Errorf("pdk %s: non-positive electrical constants", t.Name)
	}
	return nil
}
