package evcache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"primopt/internal/cellgen"
	"primopt/internal/extract"
	"primopt/internal/obs"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
)

var testTech = pdk.Default()

func testLayout() *cellgen.Layout {
	return &cellgen.Layout{
		Config: cellgen.Config{NFin: 12, NF: 20, M: 4, Dummies: 2, Pattern: cellgen.PatABBA},
		Wires: map[string]*cellgen.WireEst{
			"s":   {NWires: 1, Length: 100},
			"d_a": {NWires: 2, Length: 50},
		},
	}
}

func testEntry() *Entry {
	return &Entry{
		Layout: testLayout(),
		Eval:   &primlib.Eval{Values: map[string]float64{"gain": 10}, Sims: 3},
		Cost:   4.5,
	}
}

func TestKeySnapshot(t *testing.T) {
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}
	lay := testLayout()
	base := Key(testTech, "dp", sz, bias, lay, nil)

	if again := Key(testTech, "dp", sz, bias, lay, nil); again != base {
		t.Errorf("key not stable: %q vs %q", base, again)
	}
	// Dummies are part of the snapshot even though Config.ID omits
	// them — a dummy-count change moves the LDE environment.
	moreDummies := testLayout()
	moreDummies.Config.Dummies = 4
	if Key(testTech, "dp", sz, bias, moreDummies, nil) == base {
		t.Error("dummy count not in the key")
	}
	wires := testLayout()
	wires.Wires["s"].NWires = 3
	if Key(testTech, "dp", sz, bias, wires, nil) == base {
		t.Error("wire count not in the key")
	}
	otherBias := bias
	otherBias.ITail = 100e-6
	if Key(testTech, "dp", sz, otherBias, lay, nil) == base {
		t.Error("bias not in the key")
	}
	otherSz := sz
	otherSz.TotalFins = 480
	if Key(testTech, "dp", otherSz, bias, lay, nil) == base {
		t.Error("sizing not in the key")
	}
	if Key(testTech, "cm", sz, bias, lay, nil) == base {
		t.Error("kind not in the key")
	}
	// The schematic key is distinct from every layout key.
	if sk := Key(testTech, "dp", sz, bias, nil, nil); sk == base {
		t.Error("schematic key collides with layout key")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New()
	tr := obs.New()
	const goroutines = 16
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for range [goroutines]struct{}{} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ent, err := c.Do(tr, "k", func() (*Entry, error) {
				computes.Add(1)
				return testEntry(), nil
			})
			if err != nil || ent == nil || ent.Cost != 4.5 {
				t.Errorf("Do: ent=%v err=%v", ent, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits + 1 miss", st, goroutines-1)
	}
	if hits := tr.Counter("evcache.hits").Value(); hits != goroutines-1 {
		t.Errorf("evcache.hits = %d, want %d", hits, goroutines-1)
	}
}

func TestDoDeepIsolation(t *testing.T) {
	c := New()
	if _, err := c.Do(nil, "k", func() (*Entry, error) { return testEntry(), nil }); err != nil {
		t.Fatal(err)
	}
	got, err := c.Do(nil, "k", func() (*Entry, error) {
		t.Fatal("hit path must not compute")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the handed-out copy must not reach the cache.
	got.Layout.Wires["s"].NWires = 99
	got.Eval.Values["gain"] = -1
	again, err := c.Do(nil, "k", func() (*Entry, error) { return nil, errors.New("no") })
	if err != nil {
		t.Fatal(err)
	}
	if n := again.Layout.Wires["s"].NWires; n != 1 {
		t.Errorf("cached wire count corrupted to %d", n)
	}
	if v := again.Eval.Values["gain"]; v != 10 {
		t.Errorf("cached eval corrupted to %v", v)
	}
	if again.Layout == got.Layout || again.Eval == got.Eval {
		t.Error("cache handed out shared pointers")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	if _, err := c.Do(nil, "k", func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("failed compute leaked into stats: %+v", st)
	}
	ent, err := c.Do(nil, "k", func() (*Entry, error) { return testEntry(), nil })
	if err != nil || ent.Cost != 4.5 {
		t.Fatalf("recompute after error: ent=%v err=%v", ent, err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats after recovery = %+v", st)
	}
}

func TestMarkRequested(t *testing.T) {
	c := New()
	if c.MarkRequested("a") {
		t.Error("first request reported as duplicate")
	}
	if !c.MarkRequested("a") {
		t.Error("second request not reported as duplicate")
	}
	if c.MarkRequested("b") {
		t.Error("unrelated key reported as duplicate")
	}
}

func TestNilCacheStats(t *testing.T) {
	var c *Cache
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestEntryCloneSchematic(t *testing.T) {
	// Schematic entries carry only an Eval; clone must not invent
	// layout state, and must still deep-copy.
	e := &Entry{Eval: &primlib.Eval{Values: map[string]float64{"gm": 1}, Sims: 2}}
	cl := e.clone()
	if cl.Layout != nil || cl.Ex != nil {
		t.Error("schematic clone grew layout state")
	}
	cl.Eval.Values["gm"] = 7
	if e.Eval.Values["gm"] != 1 {
		t.Error("schematic clone shares the eval map")
	}
}

// TestMissesCountDistinctSnapshots pins the accounting behind the
// csamp bench anomaly (18 hits / 114 misses with the cache on): a
// tuning-style sweep over wire counts produces one miss per distinct
// snapshot and zero spurious misses — every repeat of an
// already-computed snapshot is a hit. A low hit ratio therefore means
// the optimizer genuinely visited that many distinct snapshots (the
// csamp case: two unrelated primitive instances, nothing to share),
// not that the key is unstable.
func TestMissesCountDistinctSnapshots(t *testing.T) {
	c := New()
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}

	const maxW = 6
	var computes int
	sweep := func() {
		lay := testLayout()
		for n := 1; n <= maxW; n++ {
			lay.Wires["d_a"].NWires = n
			key := Key(testTech, "csamp", sz, bias, lay, nil)
			if _, err := c.Do(nil, key, func() (*Entry, error) {
				computes++
				return testEntry(), nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First sweep: every wire count is a new snapshot — all misses.
	sweep()
	st := c.Stats()
	if st.Misses != maxW || st.Hits != 0 {
		t.Fatalf("first sweep stats = %+v, want %d misses / 0 hits", st, maxW)
	}
	// Re-sweeping the identical snapshots computes nothing: the keys
	// are deterministic, so every request is a hit.
	sweep()
	st = c.Stats()
	if st.Misses != maxW || st.Hits != maxW {
		t.Errorf("re-sweep stats = %+v, want %d misses / %d hits", st, maxW, maxW)
	}
	if computes != maxW {
		t.Errorf("computed %d entries, want %d (one per distinct snapshot)", computes, maxW)
	}
	if st.Hits+st.Misses != 2*maxW {
		t.Errorf("hits+misses = %d, want %d (every request accounted once)", st.Hits+st.Misses, 2*maxW)
	}

	// A second instance of a different kind shares nothing even at
	// identical sizing/bias/layout — the csamp situation, where the
	// "csamp" and "csource_p" instances can never serve each other.
	lay := testLayout()
	if Key(testTech, "csamp", sz, bias, lay, nil) == Key(testTech, "csource_p", sz, bias, lay, nil) {
		t.Error("distinct primitive kinds share a key")
	}
}

// TestKeyPDKFingerprint is the regression test for the headline
// bugfix: before v2 the key omitted the PDK entirely, so two
// technology variants of the same sizing/layout collided — latent
// in-process (one PDK per run), wrong-layout-serving the moment
// entries outlive a process. Two PDK variants must get distinct
// keys; identical content must key identically across distinct Tech
// values (content addressing, not pointer addressing).
func TestKeyPDKFingerprint(t *testing.T) {
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}
	lay := testLayout()

	base := Key(pdk.Default(), "dp", sz, bias, lay, nil)

	// A second Tech value with identical parameters: same key.
	twin := pdk.Default()
	if Key(twin, "dp", sz, bias, lay, nil) != base {
		t.Error("identical PDK content produced different keys (pointer-addressed, not content-addressed)")
	}

	// The old collision: a variant PDK (retargeted mobility) with the
	// same sizing and layout must NOT share a key.
	variant := pdk.Default()
	variant.U0N *= 1.1
	if Key(variant, "dp", sz, bias, lay, nil) == base {
		t.Error("PDK variant shares a key with the base PDK — wrong-PDK entries would be served")
	}
	// Structural variants too (an extra metal layer).
	taller := pdk.Default()
	taller.Metals = append(taller.Metals, taller.Metals[len(taller.Metals)-1])
	if Key(taller, "dp", sz, bias, lay, nil) == base {
		t.Error("metal-stack variant shares a key with the base PDK")
	}

	// Keys declare their schema generation.
	if !strings.HasPrefix(base, fmt.Sprintf("v%d|pdk=", SchemaVersion)) {
		t.Errorf("key %q does not open with schema version and PDK fingerprint", base)
	}
}

// TestKeyRoutes pins the external-route section: the same layout
// evaluated under different port-route overrides is a different
// snapshot, and route order never matters.
func TestKeyRoutes(t *testing.T) {
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}
	lay := testLayout()

	bare := Key(testTech, "dp", sz, bias, lay, nil)
	r1 := map[string]extract.Route{
		"out": {Layer: 2, Length: 500, NWires: 1, PinLayer: 1, Vias: 2},
		"in":  {Layer: 1, Length: 300, NWires: 2, PinLayer: 1, Vias: 1},
	}
	routed := Key(testTech, "dp", sz, bias, lay, r1)
	if routed == bare {
		t.Error("route overrides not in the key")
	}
	// Map iteration order cannot leak into the key.
	r2 := map[string]extract.Route{
		"in":  {Layer: 1, Length: 300, NWires: 2, PinLayer: 1, Vias: 1},
		"out": {Layer: 2, Length: 500, NWires: 1, PinLayer: 1, Vias: 2},
	}
	if Key(testTech, "dp", sz, bias, lay, r2) != routed {
		t.Error("route key depends on map iteration order")
	}
	wider := map[string]extract.Route{
		"out": {Layer: 2, Length: 500, NWires: 4, PinLayer: 1, Vias: 2},
		"in":  r1["in"],
	}
	if Key(testTech, "dp", sz, bias, lay, wider) == routed {
		t.Error("route wire count not in the key")
	}
}

// TestApproxBytesAliasing pins the accounting bugfix: an entry whose
// Layout aliases Ex.Layout (the stored-entry invariant) charges that
// layout exactly once, and an entry whose extraction carries a
// distinct layout charges both — the old code never counted
// Ex.Layout at all, so the two cases wrongly measured identical.
func TestApproxBytesAliasing(t *testing.T) {
	lay := testLayout()
	aliased := &Entry{Layout: lay, Ex: &extract.Extracted{Layout: lay}}
	distinct := &Entry{Layout: testLayout(), Ex: &extract.Extracted{Layout: testLayout()}}
	onlyEntry := &Entry{Layout: testLayout(), Ex: &extract.Extracted{}}

	a, d, o := aliased.approxBytes(), distinct.approxBytes(), onlyEntry.approxBytes()
	if d <= a {
		t.Errorf("distinct layouts (%d bytes) must cost more than aliased (%d bytes)", d, a)
	}
	if want := a + layoutBytes(lay); d != want {
		t.Errorf("distinct = %d, want aliased + one layout = %d", d, want)
	}
	if o != a {
		t.Errorf("nil Ex.Layout (%d bytes) must match aliased accounting (%d bytes)", o, a)
	}
	// The clone invariant keeps stored entries on the cheap path:
	// clone() re-aliases, so a cloned entry costs what the original
	// aliased entry costs.
	ent := testEntry()
	ent.Ex = &extract.Extracted{Layout: ent.Layout}
	if cb := ent.clone().approxBytes(); cb != ent.approxBytes() {
		t.Errorf("clone changed accounting: %d vs %d", cb, ent.approxBytes())
	}
}
