package evcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"primopt/internal/cellgen"
	"primopt/internal/obs"
	"primopt/internal/primlib"
)

func testLayout() *cellgen.Layout {
	return &cellgen.Layout{
		Config: cellgen.Config{NFin: 12, NF: 20, M: 4, Dummies: 2, Pattern: cellgen.PatABBA},
		Wires: map[string]*cellgen.WireEst{
			"s":   {NWires: 1, Length: 100},
			"d_a": {NWires: 2, Length: 50},
		},
	}
}

func testEntry() *Entry {
	return &Entry{
		Layout: testLayout(),
		Eval:   &primlib.Eval{Values: map[string]float64{"gain": 10}, Sims: 3},
		Cost:   4.5,
	}
}

func TestKeySnapshot(t *testing.T) {
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}
	lay := testLayout()
	base := Key("dp", sz, bias, lay)

	if again := Key("dp", sz, bias, lay); again != base {
		t.Errorf("key not stable: %q vs %q", base, again)
	}
	// Dummies are part of the snapshot even though Config.ID omits
	// them — a dummy-count change moves the LDE environment.
	moreDummies := testLayout()
	moreDummies.Config.Dummies = 4
	if Key("dp", sz, bias, moreDummies) == base {
		t.Error("dummy count not in the key")
	}
	wires := testLayout()
	wires.Wires["s"].NWires = 3
	if Key("dp", sz, bias, wires) == base {
		t.Error("wire count not in the key")
	}
	otherBias := bias
	otherBias.ITail = 100e-6
	if Key("dp", sz, otherBias, lay) == base {
		t.Error("bias not in the key")
	}
	otherSz := sz
	otherSz.TotalFins = 480
	if Key("dp", otherSz, bias, lay) == base {
		t.Error("sizing not in the key")
	}
	if Key("cm", sz, bias, lay) == base {
		t.Error("kind not in the key")
	}
	// The schematic key is distinct from every layout key.
	if sk := Key("dp", sz, bias, nil); sk == base {
		t.Error("schematic key collides with layout key")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New()
	tr := obs.New()
	const goroutines = 16
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for range [goroutines]struct{}{} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ent, err := c.Do(tr, "k", func() (*Entry, error) {
				computes.Add(1)
				return testEntry(), nil
			})
			if err != nil || ent == nil || ent.Cost != 4.5 {
				t.Errorf("Do: ent=%v err=%v", ent, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits + 1 miss", st, goroutines-1)
	}
	if hits := tr.Counter("evcache.hits").Value(); hits != goroutines-1 {
		t.Errorf("evcache.hits = %d, want %d", hits, goroutines-1)
	}
}

func TestDoDeepIsolation(t *testing.T) {
	c := New()
	if _, err := c.Do(nil, "k", func() (*Entry, error) { return testEntry(), nil }); err != nil {
		t.Fatal(err)
	}
	got, err := c.Do(nil, "k", func() (*Entry, error) {
		t.Fatal("hit path must not compute")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the handed-out copy must not reach the cache.
	got.Layout.Wires["s"].NWires = 99
	got.Eval.Values["gain"] = -1
	again, err := c.Do(nil, "k", func() (*Entry, error) { return nil, errors.New("no") })
	if err != nil {
		t.Fatal(err)
	}
	if n := again.Layout.Wires["s"].NWires; n != 1 {
		t.Errorf("cached wire count corrupted to %d", n)
	}
	if v := again.Eval.Values["gain"]; v != 10 {
		t.Errorf("cached eval corrupted to %v", v)
	}
	if again.Layout == got.Layout || again.Eval == got.Eval {
		t.Error("cache handed out shared pointers")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	if _, err := c.Do(nil, "k", func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("failed compute leaked into stats: %+v", st)
	}
	ent, err := c.Do(nil, "k", func() (*Entry, error) { return testEntry(), nil })
	if err != nil || ent.Cost != 4.5 {
		t.Fatalf("recompute after error: ent=%v err=%v", ent, err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats after recovery = %+v", st)
	}
}

func TestMarkRequested(t *testing.T) {
	c := New()
	if c.MarkRequested("a") {
		t.Error("first request reported as duplicate")
	}
	if !c.MarkRequested("a") {
		t.Error("second request not reported as duplicate")
	}
	if c.MarkRequested("b") {
		t.Error("unrelated key reported as duplicate")
	}
}

func TestNilCacheStats(t *testing.T) {
	var c *Cache
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestEntryCloneSchematic(t *testing.T) {
	// Schematic entries carry only an Eval; clone must not invent
	// layout state, and must still deep-copy.
	e := &Entry{Eval: &primlib.Eval{Values: map[string]float64{"gm": 1}, Sims: 2}}
	cl := e.clone()
	if cl.Layout != nil || cl.Ex != nil {
		t.Error("schematic clone grew layout state")
	}
	cl.Eval.Values["gm"] = 7
	if e.Eval.Values["gm"] != 1 {
		t.Error("schematic clone shares the eval map")
	}
}

// TestMissesCountDistinctSnapshots pins the accounting behind the
// csamp bench anomaly (18 hits / 114 misses with the cache on): a
// tuning-style sweep over wire counts produces one miss per distinct
// snapshot and zero spurious misses — every repeat of an
// already-computed snapshot is a hit. A low hit ratio therefore means
// the optimizer genuinely visited that many distinct snapshots (the
// csamp case: two unrelated primitive instances, nothing to share),
// not that the key is unstable.
func TestMissesCountDistinctSnapshots(t *testing.T) {
	c := New()
	sz := primlib.Sizing{TotalFins: 960, L: 14}
	bias := primlib.Bias{Vdd: 0.8, VCM: 0.45}

	const maxW = 6
	var computes int
	sweep := func() {
		lay := testLayout()
		for n := 1; n <= maxW; n++ {
			lay.Wires["d_a"].NWires = n
			key := Key("csamp", sz, bias, lay)
			if _, err := c.Do(nil, key, func() (*Entry, error) {
				computes++
				return testEntry(), nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First sweep: every wire count is a new snapshot — all misses.
	sweep()
	st := c.Stats()
	if st.Misses != maxW || st.Hits != 0 {
		t.Fatalf("first sweep stats = %+v, want %d misses / 0 hits", st, maxW)
	}
	// Re-sweeping the identical snapshots computes nothing: the keys
	// are deterministic, so every request is a hit.
	sweep()
	st = c.Stats()
	if st.Misses != maxW || st.Hits != maxW {
		t.Errorf("re-sweep stats = %+v, want %d misses / %d hits", st, maxW, maxW)
	}
	if computes != maxW {
		t.Errorf("computed %d entries, want %d (one per distinct snapshot)", computes, maxW)
	}
	if st.Hits+st.Misses != 2*maxW {
		t.Errorf("hits+misses = %d, want %d (every request accounted once)", st.Hits+st.Misses, 2*maxW)
	}

	// A second instance of a different kind shares nothing even at
	// identical sizing/bias/layout — the csamp situation, where the
	// "csamp" and "csource_p" instances can never serve each other.
	lay := testLayout()
	if Key("csamp", sz, bias, lay) == Key("csource_p", sz, bias, lay) {
		t.Error("distinct primitive kinds share a key")
	}
}
