package evcache

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"primopt/internal/extract"
	"primopt/internal/fault"
	"primopt/internal/obs"
	"primopt/internal/primlib"
)

func diskEntryFor(cost float64) *Entry {
	lay := testLayout()
	return &Entry{
		Layout: lay,
		Ex:     &extract.Extracted{Layout: lay},
		Eval:   &primlib.Eval{Values: map[string]float64{"gain": cost * 2}, Sims: 3},
		Cost:   cost,
	}
}

func mustPut(t *testing.T, d *Disk, key string, e *Entry) {
	t.Helper()
	if _, err := d.put(key, e); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "k1", diskEntryFor(1.5))
	mustPut(t, d, "k2", diskEntryFor(2.5))

	// Same process: served from the index immediately.
	got, ok := d.get("k1", nil, nil)
	if !ok || got.Cost != 1.5 {
		t.Fatalf("get k1 = %+v, %v", got, ok)
	}
	if got.Ex == nil || got.Layout != got.Ex.Layout {
		t.Error("decoded entry lost the Layout/Ex.Layout alias")
	}
	if got.Eval == nil || got.Eval.Values["gain"] != 3.0 {
		t.Errorf("decoded eval = %+v", got.Eval)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// New process: index rebuilt by scanning.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for key, cost := range map[string]float64{"k1": 1.5, "k2": 2.5} {
		got, ok := d2.get(key, nil, nil)
		if !ok || got.Cost != cost {
			t.Errorf("reopened get %q = %+v, %v (want cost %g)", key, got, ok, cost)
		}
	}
	if _, ok := d2.get("absent", nil, nil); ok {
		t.Error("absent key served")
	}
	st := d2.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskSchematicEntryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mustPut(t, d, "sch", &Entry{Eval: &primlib.Eval{Values: map[string]float64{"gm": 7}, Sims: 1}})
	got, ok := d.get("sch", nil, nil)
	if !ok || got.Layout != nil || got.Ex != nil || got.Eval.Values["gm"] != 7 {
		t.Errorf("schematic entry = %+v, %v", got, ok)
	}
}

// TestDiskTornTail is the crash-safety matrix: a segment truncated at
// every byte offset inside its last record's span must reopen with
// the torn record dropped (never served), every earlier record
// served, and the next append repairing the tail so a further reopen
// serves everything again.
func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", diskEntryFor(1))
	mustPut(t, d, "b", diskEntryFor(2))
	preB := d.Stats().Bytes
	mustPut(t, d, "c", diskEntryFor(3))
	full := d.Stats().Bytes
	d.Close()

	seg := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != full || preB >= full {
		t.Fatalf("layout assumption broken: file %d bytes, preB %d, full %d", len(blob), preB, full)
	}

	// Cut points spanning the last record: right after the previous
	// record (clean cut), mid record-header, end of header, mid key,
	// and one byte short of complete.
	cuts := []int64{preB, preB + 3, preB + recHdrLen, preB + recHdrLen + 1, full - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			if err := os.WriteFile(seg, blob[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDisk(dir, DiskOptions{})
			if err != nil {
				t.Fatalf("reopen after truncation: %v", err)
			}
			// The torn record is dropped, never served.
			if _, ok := d.get("c", nil, nil); ok {
				t.Fatal("torn record served")
			}
			// Everything before the tear is intact.
			for key, cost := range map[string]float64{"a": 1, "b": 2} {
				got, ok := d.get(key, nil, nil)
				if !ok || got.Cost != cost {
					t.Fatalf("pre-tear record %q = %+v, %v", key, got, ok)
				}
			}
			// The next append lands on a repaired tail...
			mustPut(t, d, "c", diskEntryFor(3))
			got, ok := d.get("c", nil, nil)
			if !ok || got.Cost != 3 {
				t.Fatalf("re-put after repair = %+v, %v", got, ok)
			}
			d.Close()
			// ...and a further reopen serves all three records.
			d2, err := OpenDisk(dir, DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			for key, cost := range map[string]float64{"a": 1, "b": 2, "c": 3} {
				got, ok := d2.get(key, nil, nil)
				if !ok || got.Cost != cost {
					t.Fatalf("post-repair reopen %q = %+v, %v", key, got, ok)
				}
			}
			if fi, err := os.Stat(seg); err != nil || fi.Size() != full {
				t.Errorf("repaired segment size = %v (err %v), want %d", fi, err, full)
			}
		})
	}
}

// TestDiskCorruptRecordDegrades flips a payload byte in place: the
// open-time scan must drop the record (checksum mismatch tears the
// segment at that boundary) while earlier records survive.
func TestDiskCorruptRecordDegrades(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", diskEntryFor(1))
	preB := d.Stats().Bytes
	mustPut(t, d, "b", diskEntryFor(2))
	d.Close()

	seg := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF // corrupt b's payload tail
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.get("b", nil, nil); ok {
		t.Error("corrupt record served")
	}
	if got, ok := d2.get("a", nil, nil); !ok || got.Cost != 1 {
		t.Errorf("record before corruption = %+v, %v", got, ok)
	}
	if st := d2.Stats(); st.Bytes != preB {
		t.Errorf("validated size = %d, want %d (corruption boundary)", st.Bytes, preB)
	}
}

// TestDiskSchemaMismatch: segments stamped with another schema
// version are never indexed and go first at eviction.
func TestDiskSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", diskEntryFor(1))
	d.Close()

	// Rewrite the header with a future schema version.
	seg := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(blob[4:8], SchemaVersion+1)
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.get("a", nil, nil); ok {
		t.Error("foreign-schema record served")
	}
	st := d2.Stats()
	if st.Entries != 0 || st.Segments != 1 || st.Bytes != int64(len(blob)) {
		t.Errorf("stats = %+v", st)
	}
	// A new put must not adopt the foreign segment.
	mustPut(t, d2, "b", diskEntryFor(2))
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Errorf("put adopted a foreign-schema segment: %v", err)
	}
	// The foreign segment is the first eviction victim.
	removed, _ := d2.GC(d2.Stats().Bytes - int64(len(blob)))
	if removed != 1 {
		t.Errorf("GC removed %d segments, want 1", removed)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Error("foreign segment survived GC")
	}
	if got, ok := d2.get("b", nil, nil); !ok || got.Cost != 2 {
		t.Errorf("live record lost to GC: %+v, %v", got, ok)
	}
	d2.Close()
}

// TestDiskEviction: tiny segment bound forces rotation; the size
// bound then retires whole least-recently-used segments, and evicted
// keys fall out of the index.
func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	// Segments rotate almost immediately (every record overflows the
	// bound), so each record lands in its own segment.
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1, MaxBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 1; i <= 4; i++ {
		mustPut(t, d, fmt.Sprintf("k%d", i), diskEntryFor(float64(i)))
	}
	st := d.Stats()
	if st.Segments != 4 || st.Entries != 4 {
		t.Fatalf("pre-eviction stats = %+v", st)
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := d.get("k1", nil, nil); !ok {
		t.Fatal("k1 missing")
	}
	removed, remaining := d.GC(st.Bytes - 1) // one byte over: exactly one segment goes
	if removed != 1 {
		t.Fatalf("GC removed %d, want 1 (remaining %d)", removed, remaining)
	}
	if _, ok := d.get("k2", nil, nil); ok {
		t.Error("LRU victim k2 still served after eviction")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := d.get(k, nil, nil); !ok {
			t.Errorf("%s evicted, want k2 only", k)
		}
	}
	if st := d.Stats(); st.Evictions != 1 || st.Segments != 3 {
		t.Errorf("post-eviction stats = %+v", st)
	}
}

// TestDiskFaultDegradesToCompute arms the evcache.disk site: an
// injected read failure must degrade to a recompute — no panic, no
// error to the caller — and count a read error.
func TestDiskFaultDegradesToCompute(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir, DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			c := New()
			c.AttachDisk(d)
			tr := obs.New()

			// Warm the disk through the cache.
			if _, err := c.Do(tr, "k", func() (*Entry, error) { return diskEntryFor(1), nil }); err != nil {
				t.Fatal(err)
			}

			// Fresh memory tier, same disk: an armed read fault forces
			// the compute path.
			c2 := New()
			c2.AttachDisk(d)
			inj, err := fault.New(1, fmt.Sprintf("evcache.disk:%s@1+", mode))
			if err != nil {
				t.Fatal(err)
			}
			ctx := fault.With(context.Background(), inj)
			computed := false
			got, err := c2.DoCtx(ctx, tr, "k", func() (*Entry, error) {
				computed = true
				return diskEntryFor(9), nil
			})
			if err != nil || got == nil {
				t.Fatalf("faulted read must degrade, got err %v", err)
			}
			if !computed || got.Cost != 9 {
				t.Errorf("degraded path did not compute: computed=%v cost=%g", computed, got.Cost)
			}
			if st := d.Stats(); st.ReadErrs == 0 {
				t.Error("read error not counted")
			}
			if v := tr.Counter("evcache.disk_read_errors").Value(); v == 0 {
				t.Error("evcache.disk_read_errors not on the trace")
			}
		})
	}
}

// TestCacheDiskIntegration: a second cache over the same directory
// serves from disk without computing — the zero-SPICE warm run in
// miniature — and disk hits still count as memory-tier misses so
// evcache.hits == repeat-requests holds on warm runs.
func TestCacheDiskIntegration(t *testing.T) {
	dir := t.TempDir()
	tr := obs.New()

	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := New()
	c1.AttachDisk(d1)
	if _, err := c1.Do(tr, "k", func() (*Entry, error) { return diskEntryFor(4), nil }); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	// "Second process": fresh cache, reopened disk.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	c2 := New()
	c2.AttachDisk(d2)
	tr2 := obs.New()
	got, err := c2.Do(tr2, "k", func() (*Entry, error) {
		t.Fatal("warm run must not compute")
		return nil, nil
	})
	if err != nil || got.Cost != 4 {
		t.Fatalf("warm get = %+v, %v", got, err)
	}
	st := c2.Stats()
	if !st.DiskTier || st.DiskHits != 1 || st.Hits != 0 || st.Misses != 1 {
		t.Errorf("warm stats = %+v (disk hit must be a memory-tier miss)", st)
	}
	if v := tr2.Counter("evcache.disk_hits").Value(); v != 1 {
		t.Errorf("evcache.disk_hits = %d", v)
	}
	// The memory tier now holds the entry: the next request is a pure
	// memory hit, not a second disk read.
	if _, err := c2.Do(tr2, "k", func() (*Entry, error) { return nil, fmt.Errorf("no") }); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Errorf("memory tier not filled from disk: %+v", st)
	}
}

// TestRecordRequest pins the accounting every non-optimizer cache
// consumer relies on: one optimize.evals per request, one
// optimize.repeat_evals per re-request, nothing when untraced.
func TestRecordRequest(t *testing.T) {
	c := New()
	tr := obs.New()
	c.RecordRequest(tr, "x")
	c.RecordRequest(tr, "x")
	c.RecordRequest(tr, "y")
	if v := tr.Counter("optimize.evals").Value(); v != 3 {
		t.Errorf("optimize.evals = %d, want 3", v)
	}
	if v := tr.Counter("optimize.repeat_evals").Value(); v != 1 {
		t.Errorf("optimize.repeat_evals = %d, want 1", v)
	}
	// Nil-safe in every position.
	c.RecordRequest(nil, "z")
	var nilC *Cache
	nilC.RecordRequest(tr, "z")
}
