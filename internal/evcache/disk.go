// Disk tier: a persistent, crash-safe, content-addressed store of
// evaluation entries backing the in-memory cache. The design goals,
// in order:
//
//  1. Never serve a wrong or torn result. Keys are fully
//     content-addressed (schema version + PDK fingerprint + snapshot,
//     see Key), every record carries a checksum verified on both scan
//     and read, and segments from another schema generation are never
//     indexed.
//  2. Crash safety by construction, not by fsync discipline. Segments
//     are append-only; a crash mid-write leaves a torn tail that the
//     next open detects (short header, implausible length, or
//     checksum mismatch), drops, and later truncates away before the
//     next append. Everything before the tear is served normally.
//  3. Degrade, never crash. A read that fails for any reason —
//     corrupt bytes, vanished file, injected fault — counts a read
//     error, evicts the bad index entry, and falls back to compute.
//
// On-disk format. A segment file seg-NNNNNNNN.evc is an 8-byte
// header ("EVCS" magic + big-endian uint32 schema version) followed
// by records:
//
//	uint32 payloadLen | uint16 keyLen | uint64 fnv64a(key+payload)
//	key bytes | gob payload
//
// The in-memory index (key -> segment/offset) is rebuilt by scanning
// every segment at open; later segments win duplicate keys, so an
// append-only update is just a re-put. Eviction retires whole
// least-recently-used segments, so reclaiming space is one unlink —
// no compaction, no in-place rewrites to tear.
package evcache

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"primopt/internal/cellgen"
	"primopt/internal/cost"
	"primopt/internal/extract"
	"primopt/internal/fault"
	"primopt/internal/obs"
	"primopt/internal/primlib"
)

const (
	segMagic   = "EVCS"
	headerLen  = 8  // magic + schema version
	recHdrLen  = 14 // payloadLen(4) + keyLen(2) + checksum(8)
	maxPayload = 1 << 30
)

// DiskOptions bound the disk tier. Zero values take defaults.
type DiskOptions struct {
	// MaxBytes caps the total size of all segment files; exceeding it
	// retires whole least-recently-used segments. Default 1 GiB.
	MaxBytes int64
	// SegmentBytes is the size at which the active segment rotates.
	// Default 4 MiB.
	SegmentBytes int64
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 30
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// segment is the in-memory state of one segment file. size is the
// validated prefix length (header plus intact records) — for a torn
// segment this is strictly less than the file size, and adoption as
// the active segment truncates the file down to it.
type segment struct {
	seq        int
	path       string
	size       int64
	torn       bool
	lastUse    int64 // logical clock, for LRU
	keys       int   // live index entries pointing here
	compatible bool  // header matched magic + SchemaVersion
}

// recordLoc locates one record's key+payload span inside a segment.
type recordLoc struct {
	seg        int
	keyOff     int64 // offset of the key bytes (record header already skipped)
	keyLen     int
	payloadLen int
	sum        uint64
}

// Disk is the persistent tier. All methods are safe for concurrent
// use and nil-safe; reads open the segment file per call, so a
// closed Disk still answers Stats and GC.
type Disk struct {
	dir  string
	opts DiskOptions

	mu       sync.Mutex
	index    map[string]recordLoc
	segments map[int]*segment
	active   *segment
	activeF  *os.File
	nextSeq  int
	clock    int64
	closed   bool

	hits      atomic.Int64
	misses    atomic.Int64
	readErrs  atomic.Int64
	writeErrs atomic.Int64
	evictions atomic.Int64
}

// DiskStats is a point-in-time snapshot of the disk tier.
type DiskStats struct {
	Hits, Misses        int64
	ReadErrs, WriteErrs int64
	Evictions           int64
	Segments, Entries   int
	Bytes               int64
}

func segName(seq int) string { return fmt.Sprintf("seg-%08d.evc", seq) }

// OpenDisk opens (creating if needed) a disk tier rooted at dir and
// rebuilds the index by scanning every segment. Torn tails are
// dropped from the index here; the tail bytes themselves are
// truncated lazily, when the segment is next adopted for appends.
// Segments with a foreign header (other schema version, other magic)
// are tracked for size accounting only — never indexed, first in
// line for eviction.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("evcache: open disk tier: %w", err)
	}
	d := &Disk{
		dir:      dir,
		opts:     opts.withDefaults(),
		index:    make(map[string]recordLoc),
		segments: make(map[int]*segment),
		nextSeq:  1,
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("evcache: open disk tier: %w", err)
	}
	var seqs []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var seq int
		if n, serr := fmt.Sscanf(e.Name(), "seg-%08d.evc", &seq); n == 1 && serr == nil && e.Name() == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		seg, recs, serr := scanSegment(dir, seq)
		if serr != nil {
			// Unreadable file: leave it untracked. It still occupies
			// disk, but a file we cannot even open is not ours to
			// account or remove.
			continue
		}
		d.clock++
		seg.lastUse = d.clock
		d.segments[seq] = seg
		for _, r := range recs {
			d.index[r.key] = r.loc // later segments override earlier
		}
		if seq >= d.nextSeq {
			d.nextSeq = seq + 1
		}
	}
	// Recount live keys per segment after all overrides settled.
	for _, s := range d.segments {
		s.keys = 0
	}
	for _, loc := range d.index {
		if s := d.segments[loc.seg]; s != nil {
			s.keys++
		}
	}
	return d, nil
}

type scannedRec struct {
	key string
	loc recordLoc
}

// scanSegment validates one segment file front to back. The scan
// stops at the first defect — short read, implausible length, or
// checksum mismatch — marking the segment torn with size set to the
// last intact boundary, so everything after a tear is invisible.
func scanSegment(dir string, seq int) (*segment, []scannedRec, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	//lint:allow errflow read-only descriptor; a close error cannot lose data
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	fileSize := fi.Size()
	seg := &segment{seq: seq, path: path}

	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// Shorter than a header: nothing salvageable, not adoptable.
		seg.torn = true
		seg.size = fileSize
		return seg, nil, nil
	}
	if string(hdr[0:4]) != segMagic || binary.BigEndian.Uint32(hdr[4:8]) != SchemaVersion {
		// Foreign generation: account its bytes, serve nothing.
		seg.size = fileSize
		return seg, nil, nil
	}
	seg.compatible = true

	var recs []scannedRec
	off := int64(headerLen)
	for off < fileSize {
		var rh [recHdrLen]byte
		if _, err := io.ReadFull(io.NewSectionReader(f, off, fileSize-off), rh[:]); err != nil {
			seg.torn = true
			break
		}
		plen := int64(binary.BigEndian.Uint32(rh[0:4]))
		klen := int64(binary.BigEndian.Uint16(rh[4:6]))
		sum := binary.BigEndian.Uint64(rh[6:14])
		if klen == 0 || plen > maxPayload || off+recHdrLen+klen+plen > fileSize {
			seg.torn = true
			break
		}
		buf := make([]byte, klen+plen)
		if _, err := f.ReadAt(buf, off+recHdrLen); err != nil {
			seg.torn = true
			break
		}
		h := fnv.New64a()
		//lint:allow errflow hash.Hash.Write is documented to never return an error
		h.Write(buf)
		if h.Sum64() != sum {
			seg.torn = true
			break
		}
		recs = append(recs, scannedRec{
			key: string(buf[:klen]),
			loc: recordLoc{seg: seq, keyOff: off + recHdrLen, keyLen: int(klen), payloadLen: int(plen), sum: sum},
		})
		off += recHdrLen + klen + plen
	}
	seg.size = off
	return seg, recs, nil
}

// get looks key up in the disk tier. The fault site and every read
// failure (including an injected panic) degrade to a miss: the bad
// index entry is dropped so the key recomputes exactly once, and the
// caller falls through to compute.
func (d *Disk) get(key string, inj *fault.Injector, tr *obs.Trace) (*Entry, bool) {
	if d == nil {
		return nil, false
	}
	d.mu.Lock()
	loc, ok := d.index[key]
	var path string
	if ok {
		if seg := d.segments[loc.seg]; seg != nil {
			d.clock++
			seg.lastUse = d.clock
			path = seg.path
		} else {
			ok = false
		}
	}
	d.mu.Unlock()
	if !ok {
		d.misses.Add(1)
		return nil, false
	}
	ent, err := d.readRecord(path, key, loc, inj)
	if err != nil {
		d.readErrs.Add(1)
		tr.Counter("evcache.disk_read_errors").Inc()
		d.misses.Add(1)
		d.dropKey(key, loc)
		return nil, false
	}
	d.hits.Add(1)
	return ent, true
}

// readRecord re-verifies and decodes one record. The recover turns
// an injected (or real) panic during the read into an ordinary
// error, upholding degrade-never-crash for the whole read path.
func (d *Disk) readRecord(path, key string, loc recordLoc, inj *fault.Injector) (ent *Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			ent, err = nil, fmt.Errorf("evcache: disk read panic: %v", r)
		}
	}()
	if err := inj.Hit(fault.SiteEvcacheDisk); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only descriptor; a close error cannot lose data
	defer f.Close()
	buf := make([]byte, loc.keyLen+loc.payloadLen)
	if _, err := f.ReadAt(buf, loc.keyOff); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	//lint:allow errflow hash.Hash.Write is documented to never return an error
	h.Write(buf)
	if h.Sum64() != loc.sum {
		return nil, fmt.Errorf("evcache: disk record checksum mismatch")
	}
	if string(buf[:loc.keyLen]) != key {
		return nil, fmt.Errorf("evcache: disk record key mismatch")
	}
	return decodePayload(buf[loc.keyLen:])
}

// dropKey removes a failed index entry, but only if it still points
// at the location that failed (a concurrent re-put wins).
func (d *Disk) dropKey(key string, loc recordLoc) {
	d.mu.Lock()
	if cur, ok := d.index[key]; ok && cur == loc {
		delete(d.index, key)
		if s := d.segments[loc.seg]; s != nil {
			s.keys--
		}
	}
	d.mu.Unlock()
}

// put appends one record, reports how many segments the size bound
// evicted, and returns any write error (the caller degrades to
// memory-only on error — the entry is simply not persisted). A key
// already on disk is left in place: entries are immutable functions
// of their content-addressed key, so rewriting buys nothing.
func (d *Disk) put(key string, e *Entry) (evicted int, err error) {
	if d == nil || e == nil {
		return 0, nil
	}
	if len(key) == 0 || len(key) > 0xFFFF {
		d.writeErrs.Add(1)
		return 0, fmt.Errorf("evcache: key length %d out of range", len(key))
	}
	payload, err := encodePayload(e)
	if err != nil {
		d.writeErrs.Add(1)
		return 0, err
	}
	if int64(len(payload)) > maxPayload {
		d.writeErrs.Add(1)
		return 0, fmt.Errorf("evcache: payload %d bytes exceeds limit", len(payload))
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, fmt.Errorf("evcache: disk tier closed")
	}
	if _, ok := d.index[key]; ok {
		return 0, nil
	}
	recLen := int64(recHdrLen) + int64(len(key)) + int64(len(payload))
	if err := d.ensureActive(recLen); err != nil {
		d.writeErrs.Add(1)
		return 0, err
	}
	rec := make([]byte, recLen)
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint16(rec[4:6], uint16(len(key)))
	copy(rec[recHdrLen:], key)
	copy(rec[recHdrLen+len(key):], payload)
	h := fnv.New64a()
	//lint:allow errflow hash.Hash.Write is documented to never return an error
	h.Write(rec[recHdrLen:])
	sum := h.Sum64()
	binary.BigEndian.PutUint64(rec[6:14], sum)

	off := d.active.size
	if _, werr := d.activeF.WriteAt(rec, off); werr != nil {
		d.writeErrs.Add(1)
		// Best-effort roll back of a partial append; the scan-time
		// checksum catches whatever this misses.
		//lint:allow errflow rollback after a failed write — the write error is returned, and the checksum guards a failed truncate
		_ = d.activeF.Truncate(off)
		return 0, werr
	}
	d.active.size += recLen
	d.active.keys++
	d.clock++
	d.active.lastUse = d.clock
	d.index[key] = recordLoc{seg: d.active.seq, keyOff: off + recHdrLen, keyLen: len(key), payloadLen: len(payload), sum: sum}
	n := d.evictLocked(d.opts.MaxBytes)
	if n > 0 {
		d.evictions.Add(int64(n))
	}
	return n, nil
}

// ensureActive guarantees an append target with room for recLen:
// rotating a full active segment, else adopting the newest
// compatible existing segment (truncating its torn tail — the lazy
// tail repair), else creating a fresh segment.
func (d *Disk) ensureActive(recLen int64) error {
	if d.active != nil && d.active.size > headerLen && d.active.size+recLen > d.opts.SegmentBytes {
		//lint:allow errflow rotating away from a fully-written segment; every record it holds is already checksummed on disk
		_ = d.activeF.Close()
		d.active = nil
		d.activeF = nil
	}
	if d.active != nil {
		return nil
	}
	var adopt *segment
	for _, s := range d.segments {
		if !s.compatible || s.size < headerLen {
			continue
		}
		if s.size > headerLen && s.size+recLen > d.opts.SegmentBytes {
			continue
		}
		if adopt == nil || s.seq > adopt.seq {
			adopt = s
		}
	}
	if adopt != nil {
		if f, err := os.OpenFile(adopt.path, os.O_RDWR, 0o644); err == nil {
			if terr := f.Truncate(adopt.size); terr == nil {
				adopt.torn = false
				d.active = adopt
				d.activeF = f
				return nil
			}
			//lint:allow errflow cleanup of a descriptor we failed to adopt; the fallback path below creates a fresh segment
			_ = f.Close()
		}
		// Adoption failure falls through to a fresh segment.
	}
	seq := d.nextSeq
	d.nextSeq++
	path := filepath.Join(d.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], SchemaVersion)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		//lint:allow errflow best-effort cleanup of a half-created segment; the header-write error is what the caller needs
		_ = f.Close()
		//lint:allow errflow a leftover headerless file scans as torn and is never served
		_ = os.Remove(path)
		return err
	}
	seg := &segment{seq: seq, path: path, size: headerLen, compatible: true}
	d.clock++
	seg.lastUse = d.clock
	d.segments[seq] = seg
	d.active = seg
	d.activeF = f
	return nil
}

// evictLocked retires whole least-recently-used non-active segments
// until total size fits limit. Foreign-generation segments carry no
// live keys and the oldest clocks, so they go first — exactly the
// bytes least worth keeping.
func (d *Disk) evictLocked(limit int64) int {
	if limit <= 0 {
		return 0
	}
	n := 0
	for d.totalLocked() > limit {
		var victim *segment
		for _, s := range d.segments {
			if s == d.active {
				continue
			}
			if victim == nil || s.lastUse < victim.lastUse ||
				(s.lastUse == victim.lastUse && s.seq < victim.seq) {
				victim = s
			}
		}
		if victim == nil {
			break
		}
		d.removeSegmentLocked(victim)
		n++
	}
	return n
}

func (d *Disk) totalLocked() int64 {
	var t int64
	for _, s := range d.segments {
		t += s.size
	}
	return t
}

func (d *Disk) removeSegmentLocked(s *segment) {
	//lint:allow errflow eviction is best-effort: the index entries are dropped either way, and an unremovable file is re-scanned at next open
	_ = os.Remove(s.path)
	delete(d.segments, s.seq)
	for k, loc := range d.index {
		if loc.seg == s.seq {
			delete(d.index, k)
		}
	}
}

// GC retires least-recently-used segments until the tier fits
// maxBytes, returning how many segments were removed and the bytes
// remaining. Usable on a closed Disk (the primopt cache gc command
// runs it against an otherwise idle directory).
func (d *Disk) GC(maxBytes int64) (removed int, remaining int64) {
	if d == nil {
		return 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	removed = d.evictLocked(maxBytes)
	if removed > 0 {
		d.evictions.Add(int64(removed))
	}
	return removed, d.totalLocked()
}

// Close stops appends. Reads open segment files per call and keep
// working; Stats stays readable (the flow snapshots them after the
// run ends).
func (d *Disk) Close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	var err error
	if d.activeF != nil {
		err = d.activeF.Close()
		d.activeF = nil
	}
	d.active = nil
	return err
}

// Stats snapshots the disk tier (zero value for nil).
func (d *Disk) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	d.mu.Lock()
	segs := len(d.segments)
	entries := len(d.index)
	total := d.totalLocked()
	d.mu.Unlock()
	return DiskStats{
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		ReadErrs:  d.readErrs.Load(),
		WriteErrs: d.writeErrs.Load(),
		Evictions: d.evictions.Load(),
		Segments:  segs,
		Entries:   entries,
		Bytes:     total,
	}
}

// diskEntry is the gob payload. Layout is encoded only when it is
// not the Ex.Layout alias (the normal case stores it once); decode
// re-establishes the alias, matching the clone invariant.
type diskEntry struct {
	Layout *cellgen.Layout
	Ex     *extract.Extracted
	Eval   *primlib.Eval
	Cost   float64
	Values []cost.Value
}

func encodePayload(e *Entry) ([]byte, error) {
	de := diskEntry{Ex: e.Ex, Eval: e.Eval, Cost: e.Cost, Values: e.Values}
	if e.Ex == nil || e.Layout != e.Ex.Layout {
		de.Layout = e.Layout
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&de); err != nil {
		return nil, fmt.Errorf("evcache: encode entry: %w", err)
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte) (*Entry, error) {
	var de diskEntry
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&de); err != nil {
		return nil, fmt.Errorf("evcache: decode entry: %w", err)
	}
	ent := &Entry{Layout: de.Layout, Ex: de.Ex, Eval: de.Eval, Cost: de.Cost, Values: de.Values}
	if ent.Ex != nil && ent.Layout == nil {
		ent.Layout = ent.Ex.Layout
	}
	return ent, nil
}
