// Package evcache is the concurrency-safe memoization cache for
// primitive layout evaluations — the result cache that PR 2's
// optimize.repeat_evals counter was measuring the demand for. One
// evaluation (extraction + the primitive's SPICE testbenches) is
// keyed by the exact snapshot that determines its outcome: primitive
// kind, sizing and bias fingerprints, the full layout configuration,
// and the sorted per-terminal wire counts. Because the key carries
// sizing and bias, a single cache is safe to share across Optimize
// calls and across every primitive instance of a circuit flow — the
// RO-VCO's N identical current-starved stages all hit the same
// entries, the reuse-across-the-hierarchy ALIGN motivates.
//
// Correctness rests on two properties:
//
//   - Deep isolation: entries are stored as deep copies and handed
//     out as deep copies, so tuning's in-place wire mutations on a
//     returned layout can never corrupt the cache (or vice versa).
//   - Single flight: concurrent requests for the same uncomputed key
//     block on one computation instead of racing duplicate SPICE
//     runs; every waiter counts as a hit, so with a cache installed
//     optimize.repeat_evals == evcache.hits by construction.
//
// Errors are never cached — a failed computation releases the key so
// a later request recomputes (and the whole run aborts anyway).
//
// # Expected hit/miss profiles
//
// A low hit ratio is not a key defect. Misses count *distinct*
// snapshots: the tuner's wire sweep enumerates counts n = 1..maxW per
// terminal and every n is a different key, so the first visit to each
// is necessarily a miss — hits only come from *re*-visits (the
// winner's re-evaluation, correlated-terminal re-sweeps, or another
// instance requesting an identical snapshot). Circuits whose
// primitive instances are all distinct therefore sit near the
// sweep-enumeration floor: csamp's two instances have different kinds
// ("csamp", "csource_p") and sizings, share nothing, and measure ~18
// hits against ~114 misses — exactly the count of distinct
// (config, wires) snapshots its selection + tuning visits. The big
// ratios come from instance symmetry: the RO-VCO's N identical stages
// request the same keys and all but the first are hits.
// TestMissesCountDistinctSnapshots pins this accounting.
package evcache

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"primopt/internal/cellgen"
	"primopt/internal/cost"
	"primopt/internal/extract"
	"primopt/internal/fault"
	"primopt/internal/obs"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
)

// SchemaVersion is the cache schema generation, carried by every key
// and stamped into every disk segment header. Bump it whenever the
// key format or the persisted payload encoding changes: version-
// mismatched segments are never served, and old keys become dead
// entries that age out of the disk tier, so a schema change can never
// resurrect stale results. v2 added the PDK fingerprint and the
// external-route section to the key (v1 keys were process-local and
// omitted both — the cross-PDK collision this version fixes).
const SchemaVersion = 2

// Entry is one cached evaluation. Layout evaluations fill every
// field; schematic reference evaluations (no layout) carry only Eval.
type Entry struct {
	Layout *cellgen.Layout
	Ex     *extract.Extracted
	Eval   *primlib.Eval
	Cost   float64 // Eq. (5), percent points
	Values []cost.Value
}

// clone deep-copies an entry. The Layout/Ex aliasing invariant is
// preserved: the cloned Layout is the cloned Ex's layout.
func (e *Entry) clone() *Entry {
	out := &Entry{Cost: e.Cost, Eval: e.Eval.Clone()}
	out.Values = append([]cost.Value(nil), e.Values...)
	if e.Ex != nil {
		out.Ex = e.Ex.Clone()
		out.Layout = out.Ex.Layout
	} else if e.Layout != nil {
		out.Layout = e.Layout.Clone()
	}
	return out
}

// approxBytes estimates the retained size of an entry, for the
// evcache.bytes counter and the in-memory/disk LRU bounds. It is an
// accounting estimate (struct sizes plus per-element costs), not a
// precise heap measurement. Alias-aware: a stored entry's Layout is
// normally the same object as Ex.Layout (the clone invariant), so
// that layout is charged exactly once; an entry whose extraction
// carries a distinct layout is charged for both — the earlier
// version never looked at Ex.Layout at all, undercounting whenever
// the two diverged and leaving the size bounds dishonest.
func (e *Entry) approxBytes() int64 {
	n := int64(128)
	if e.Layout != nil {
		n += layoutBytes(e.Layout)
	}
	if e.Ex != nil {
		n += 64 + int64(len(e.Ex.Dev))*48 + int64(len(e.Ex.Term))*56
		if e.Ex.Layout != nil && e.Ex.Layout != e.Layout {
			n += layoutBytes(e.Ex.Layout)
		}
	}
	if e.Eval != nil {
		n += 32 + int64(len(e.Eval.Values))*40
	}
	n += int64(len(e.Values)) * 72
	return n
}

// layoutBytes is the accounting estimate for one retained layout.
func layoutBytes(l *cellgen.Layout) int64 {
	n := int64(256) + int64(len(l.Units))*32 + int64(len(l.Wires))*96
	for _, ctxs := range l.UnitCtx {
		n += int64(len(ctxs)) * 48
	}
	return n
}

// Key renders the canonical snapshot key for a layout evaluation of
// one primitive. The key is fully content-addressed: it opens with
// the cache schema version and the PDK fingerprint, so entries that
// outlive a process (the disk tier) can never be served across model
// changes or key-format generations — in-process both are constant,
// which is why their omission was latent until entries persisted. A
// nil layout keys the schematic reference evaluation of the same
// (kind, sizing, bias). The layout part is the full configuration
// (including dummies, which Config.ID omits) plus the sorted
// per-terminal wire counts; routes, when present, add the sorted
// external global-route geometry per port (the port-optimization
// sweeps evaluate the same layout under different route overrides) —
// exactly the state the testbench decks depend on.
func Key(t *pdk.Tech, kind string, sz primlib.Sizing, bias primlib.Bias, lay *cellgen.Layout, routes map[string]extract.Route) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|pdk=%s|%s", SchemaVersion, t.Fingerprint(), kind)
	fmt.Fprintf(&b, "|fins=%d;L=%d;rB=%d;I=%g", sz.TotalFins, sz.L, sz.RatioB, sz.NominalI)
	fmt.Fprintf(&b, "|vdd=%g;vcm=%g;vd=%g;it=%g;cl=%g;vctl=%g;vcas=%g",
		bias.Vdd, bias.VCM, bias.VD, bias.ITail, bias.CLoad, bias.VCtrl, bias.VCasc)
	if lay == nil {
		b.WriteString("|schematic")
	} else {
		c := lay.Config
		fmt.Fprintf(&b, "|cfg=%d/%d/%d/%d/%s", c.NFin, c.NF, c.M, c.Dummies, c.Pattern)
		names := make([]string, 0, len(lay.Wires))
		for w := range lay.Wires {
			names = append(names, w)
		}
		sort.Strings(names)
		for _, w := range names {
			fmt.Fprintf(&b, "|%s=%d", w, lay.Wires[w].NWires)
		}
	}
	if len(routes) > 0 {
		ports := make([]string, 0, len(routes))
		for w := range routes {
			ports = append(ports, w)
		}
		sort.Strings(ports)
		for _, w := range ports {
			r := routes[w]
			fmt.Fprintf(&b, "|r:%s=%d/%d/%d/%d/%d", w, r.Layer, r.Length, r.NWires, r.PinLayer, r.Vias)
		}
	}
	return b.String()
}

// Cache is a concurrency-safe memoization table of evaluation
// entries with single-flight computation. The zero value is not
// usable; call New. An optional disk tier (AttachDisk) backs the
// memory tier: misses consult the disk before computing, and
// successful computations are written through.
type Cache struct {
	mu        sync.Mutex
	entries   map[string]*Entry
	inflight  map[string]chan struct{}
	requested map[string]bool
	disk      *Disk

	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		entries:   make(map[string]*Entry),
		inflight:  make(map[string]chan struct{}),
		requested: make(map[string]bool),
	}
}

// Stats is a point-in-time snapshot of the cache counters. The Disk*
// fields are meaningful only when DiskTier is true.
type Stats struct {
	Hits, Misses int64
	Entries      int
	Bytes        int64

	DiskTier      bool
	DiskHits      int64
	DiskMisses    int64
	DiskReadErrs  int64
	DiskWriteErrs int64
	DiskEvictions int64
	DiskSegments  int
	DiskEntries   int
	DiskBytes     int64
}

// Stats snapshots the cache (zero value for nil).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	d := c.disk
	c.mu.Unlock()
	st := Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: n,
		Bytes:   c.bytes.Load(),
	}
	if d != nil {
		ds := d.Stats()
		st.DiskTier = true
		st.DiskHits = ds.Hits
		st.DiskMisses = ds.Misses
		st.DiskReadErrs = ds.ReadErrs
		st.DiskWriteErrs = ds.WriteErrs
		st.DiskEvictions = ds.Evictions
		st.DiskSegments = ds.Segments
		st.DiskEntries = ds.Entries
		st.DiskBytes = ds.Bytes
	}
	return st
}

// AttachDisk installs a disk tier behind the memory tier. Safe to
// call once, before the cache is shared; a nil receiver or nil disk
// is a no-op.
func (c *Cache) AttachDisk(d *Disk) {
	if c == nil || d == nil {
		return
	}
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
}

// diskTier returns the attached disk tier, if any.
func (c *Cache) diskTier() *Disk {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	return d
}

// MarkRequested records that key has been asked for and reports
// whether it had been asked for before. The optimizer's repeat-eval
// tracker uses this so its dedup scope matches the cache's sharing
// scope (process-wide with a shared cache, rather than per-Optimize).
func (c *Cache) MarkRequested(key string) bool {
	c.mu.Lock()
	dup := c.requested[key]
	c.requested[key] = true
	c.mu.Unlock()
	return dup
}

// RecordRequest books one cache request against the repeat-eval
// accounting: optimize.evals counts every request and
// optimize.repeat_evals counts re-requests of a key this cache has
// seen before. Every consumer of the cache outside the optimizer's
// own eval tracker (port optimization, flow reference metrics) must
// call this before Do so the checktrace invariant
// evcache.hits == optimize.repeat_evals holds for the whole trace,
// not just the optimize stage. Nil-safe on both receiver and trace;
// a disabled trace skips the bookkeeping entirely (matching the
// optimizer, which only tracks when tracing).
func (c *Cache) RecordRequest(tr *obs.Trace, key string) {
	if c == nil || !tr.Enabled() {
		return
	}
	dup := c.MarkRequested(key)
	tr.Counter("optimize.evals").Inc()
	if dup {
		tr.Counter("optimize.repeat_evals").Inc()
	}
}

// Do returns the entry for key, computing it at most once. On a hit
// (including waiting out another goroutine's in-flight computation)
// the caller receives a deep copy, free to mutate. On a miss the
// computed entry is returned as-is and a deep copy is stored, so the
// cache never aliases the caller's live layout. Counters land on tr
// (nil-safe): evcache.hits, evcache.misses, evcache.bytes.
func (c *Cache) Do(tr *obs.Trace, key string, compute func() (*Entry, error)) (*Entry, error) {
	return c.DoCtx(context.Background(), tr, key, compute)
}

// DoCtx is Do bound to a context. A failed or canceled in-flight
// computation never poisons waiters: each waiter wakes, re-checks,
// and (with a healthy context of its own) re-attempts the
// computation; a waiter whose own context is done returns that
// context's error instead of the first caller's. The computation slot
// is panic-safe — a panicking compute releases the key and wakes the
// waiters before the panic propagates, so a recovered worker crash
// cannot strand other goroutines or corrupt the cache.
func (c *Cache) DoCtx(ctx context.Context, tr *obs.Trace, key string, compute func() (*Entry, error)) (*Entry, error) {
	inj := fault.From(ctx)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			c.hits.Add(1)
			tr.Counter("evcache.hits").Inc()
			return e.clone(), nil
		}
		if ch, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-ch:
				// Re-check: the computation either stored an entry
				// (hit) or failed (loop and become the computer
				// ourselves).
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		ent, err := c.runCompute(ctx, tr, key, ch, inj, compute)
		if err != nil {
			return nil, err
		}
		c.misses.Add(1)
		tr.Counter("evcache.misses").Inc()
		tr.Counter("evcache.bytes").Add(ent.approxBytes())
		return ent, nil
	}
}

// runCompute executes the single-flight computation for key, storing
// the result on success and always releasing the in-flight slot —
// including when compute panics — so waiters never block forever.
// With a disk tier attached, the disk is consulted before computing
// (a disk hit skips the computation entirely but still counts as a
// memory-tier miss, keeping evcache.hits == optimize.repeat_evals on
// a warm run) and a fresh computation is written through. Disk
// failures in either direction degrade: a bad read computes, a bad
// write serves from memory only.
func (c *Cache) runCompute(ctx context.Context, tr *obs.Trace, key string, ch chan struct{}, inj *fault.Injector, compute func() (*Entry, error)) (ent *Entry, err error) {
	done := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if done && err == nil {
			stored := ent.clone()
			c.entries[key] = stored
			c.bytes.Add(stored.approxBytes())
		}
		c.mu.Unlock()
		close(ch)
	}()
	if d := c.diskTier(); d != nil {
		if de, ok := d.get(key, inj, tr); ok {
			tr.Counter("evcache.disk_hits").Inc()
			done = true
			return de, nil
		}
		tr.Counter("evcache.disk_misses").Inc()
	}
	if err = inj.Hit(fault.SiteEvcacheCompute); err != nil {
		done = true
		return nil, err
	}
	ent, err = compute()
	done = true
	if err == nil {
		if d := c.diskTier(); d != nil {
			evicted, werr := d.put(key, ent)
			if werr != nil {
				tr.Counter("evcache.disk_write_errors").Inc()
			}
			if evicted > 0 {
				tr.Counter("evcache.disk_evictions").Add(int64(evicted))
			}
		}
	}
	return ent, err
}
