// Package evcache is the concurrency-safe memoization cache for
// primitive layout evaluations — the result cache that PR 2's
// optimize.repeat_evals counter was measuring the demand for. One
// evaluation (extraction + the primitive's SPICE testbenches) is
// keyed by the exact snapshot that determines its outcome: primitive
// kind, sizing and bias fingerprints, the full layout configuration,
// and the sorted per-terminal wire counts. Because the key carries
// sizing and bias, a single cache is safe to share across Optimize
// calls and across every primitive instance of a circuit flow — the
// RO-VCO's N identical current-starved stages all hit the same
// entries, the reuse-across-the-hierarchy ALIGN motivates.
//
// Correctness rests on two properties:
//
//   - Deep isolation: entries are stored as deep copies and handed
//     out as deep copies, so tuning's in-place wire mutations on a
//     returned layout can never corrupt the cache (or vice versa).
//   - Single flight: concurrent requests for the same uncomputed key
//     block on one computation instead of racing duplicate SPICE
//     runs; every waiter counts as a hit, so with a cache installed
//     optimize.repeat_evals == evcache.hits by construction.
//
// Errors are never cached — a failed computation releases the key so
// a later request recomputes (and the whole run aborts anyway).
//
// # Expected hit/miss profiles
//
// A low hit ratio is not a key defect. Misses count *distinct*
// snapshots: the tuner's wire sweep enumerates counts n = 1..maxW per
// terminal and every n is a different key, so the first visit to each
// is necessarily a miss — hits only come from *re*-visits (the
// winner's re-evaluation, correlated-terminal re-sweeps, or another
// instance requesting an identical snapshot). Circuits whose
// primitive instances are all distinct therefore sit near the
// sweep-enumeration floor: csamp's two instances have different kinds
// ("csamp", "csource_p") and sizings, share nothing, and measure ~18
// hits against ~114 misses — exactly the count of distinct
// (config, wires) snapshots its selection + tuning visits. The big
// ratios come from instance symmetry: the RO-VCO's N identical stages
// request the same keys and all but the first are hits.
// TestMissesCountDistinctSnapshots pins this accounting.
package evcache

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"primopt/internal/cellgen"
	"primopt/internal/cost"
	"primopt/internal/extract"
	"primopt/internal/fault"
	"primopt/internal/obs"
	"primopt/internal/primlib"
)

// Entry is one cached evaluation. Layout evaluations fill every
// field; schematic reference evaluations (no layout) carry only Eval.
type Entry struct {
	Layout *cellgen.Layout
	Ex     *extract.Extracted
	Eval   *primlib.Eval
	Cost   float64 // Eq. (5), percent points
	Values []cost.Value
}

// clone deep-copies an entry. The Layout/Ex aliasing invariant is
// preserved: the cloned Layout is the cloned Ex's layout.
func (e *Entry) clone() *Entry {
	out := &Entry{Cost: e.Cost, Eval: e.Eval.Clone()}
	out.Values = append([]cost.Value(nil), e.Values...)
	if e.Ex != nil {
		out.Ex = e.Ex.Clone()
		out.Layout = out.Ex.Layout
	} else if e.Layout != nil {
		out.Layout = e.Layout.Clone()
	}
	return out
}

// approxBytes estimates the retained size of an entry, for the
// evcache.bytes counter. It is an accounting estimate (struct sizes
// plus per-element costs), not a precise heap measurement.
func (e *Entry) approxBytes() int64 {
	n := int64(128)
	if e.Layout != nil {
		n += 256 + int64(len(e.Layout.Units))*32 + int64(len(e.Layout.Wires))*96
		for _, ctxs := range e.Layout.UnitCtx {
			n += int64(len(ctxs)) * 48
		}
	}
	if e.Ex != nil {
		n += 64 + int64(len(e.Ex.Dev))*48 + int64(len(e.Ex.Term))*56
	}
	if e.Eval != nil {
		n += 32 + int64(len(e.Eval.Values))*40
	}
	n += int64(len(e.Values)) * 72
	return n
}

// Key renders the canonical snapshot key for a layout evaluation of
// one primitive. A nil layout keys the schematic reference
// evaluation of the same (kind, sizing, bias). The layout part is
// the full configuration (including dummies, which Config.ID omits)
// plus the sorted per-terminal wire counts — exactly the state the
// testbench decks depend on.
func Key(kind string, sz primlib.Sizing, bias primlib.Bias, lay *cellgen.Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|fins=%d;L=%d;rB=%d;I=%g", kind, sz.TotalFins, sz.L, sz.RatioB, sz.NominalI)
	fmt.Fprintf(&b, "|vdd=%g;vcm=%g;vd=%g;it=%g;cl=%g;vctl=%g;vcas=%g",
		bias.Vdd, bias.VCM, bias.VD, bias.ITail, bias.CLoad, bias.VCtrl, bias.VCasc)
	if lay == nil {
		b.WriteString("|schematic")
		return b.String()
	}
	c := lay.Config
	fmt.Fprintf(&b, "|cfg=%d/%d/%d/%d/%s", c.NFin, c.NF, c.M, c.Dummies, c.Pattern)
	names := make([]string, 0, len(lay.Wires))
	for w := range lay.Wires {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		fmt.Fprintf(&b, "|%s=%d", w, lay.Wires[w].NWires)
	}
	return b.String()
}

// Cache is a concurrency-safe memoization table of evaluation
// entries with single-flight computation. The zero value is not
// usable; call New.
type Cache struct {
	mu        sync.Mutex
	entries   map[string]*Entry
	inflight  map[string]chan struct{}
	requested map[string]bool

	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		entries:   make(map[string]*Entry),
		inflight:  make(map[string]chan struct{}),
		requested: make(map[string]bool),
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses int64
	Entries      int
	Bytes        int64
}

// Stats snapshots the cache (zero value for nil).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: n,
		Bytes:   c.bytes.Load(),
	}
}

// MarkRequested records that key has been asked for and reports
// whether it had been asked for before. The optimizer's repeat-eval
// tracker uses this so its dedup scope matches the cache's sharing
// scope (process-wide with a shared cache, rather than per-Optimize).
func (c *Cache) MarkRequested(key string) bool {
	c.mu.Lock()
	dup := c.requested[key]
	c.requested[key] = true
	c.mu.Unlock()
	return dup
}

// Do returns the entry for key, computing it at most once. On a hit
// (including waiting out another goroutine's in-flight computation)
// the caller receives a deep copy, free to mutate. On a miss the
// computed entry is returned as-is and a deep copy is stored, so the
// cache never aliases the caller's live layout. Counters land on tr
// (nil-safe): evcache.hits, evcache.misses, evcache.bytes.
func (c *Cache) Do(tr *obs.Trace, key string, compute func() (*Entry, error)) (*Entry, error) {
	return c.DoCtx(context.Background(), tr, key, compute)
}

// DoCtx is Do bound to a context. A failed or canceled in-flight
// computation never poisons waiters: each waiter wakes, re-checks,
// and (with a healthy context of its own) re-attempts the
// computation; a waiter whose own context is done returns that
// context's error instead of the first caller's. The computation slot
// is panic-safe — a panicking compute releases the key and wakes the
// waiters before the panic propagates, so a recovered worker crash
// cannot strand other goroutines or corrupt the cache.
func (c *Cache) DoCtx(ctx context.Context, tr *obs.Trace, key string, compute func() (*Entry, error)) (*Entry, error) {
	inj := fault.From(ctx)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			c.hits.Add(1)
			tr.Counter("evcache.hits").Inc()
			return e.clone(), nil
		}
		if ch, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-ch:
				// Re-check: the computation either stored an entry
				// (hit) or failed (loop and become the computer
				// ourselves).
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		ent, err := c.runCompute(ctx, key, ch, inj, compute)
		if err != nil {
			return nil, err
		}
		c.misses.Add(1)
		tr.Counter("evcache.misses").Inc()
		tr.Counter("evcache.bytes").Add(ent.approxBytes())
		return ent, nil
	}
}

// runCompute executes the single-flight computation for key, storing
// the result on success and always releasing the in-flight slot —
// including when compute panics — so waiters never block forever.
func (c *Cache) runCompute(ctx context.Context, key string, ch chan struct{}, inj *fault.Injector, compute func() (*Entry, error)) (ent *Entry, err error) {
	done := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if done && err == nil {
			stored := ent.clone()
			c.entries[key] = stored
			c.bytes.Add(stored.approxBytes())
		}
		c.mu.Unlock()
		close(ch)
	}()
	if err = inj.Hit(fault.SiteEvcacheCompute); err != nil {
		done = true
		return nil, err
	}
	ent, err = compute()
	done = true
	return ent, err
}
