package evcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"primopt/internal/fault"
)

// TestDoCtxFailedComputeDoesNotPoisonWaiters is the single-flight
// poisoning regression: when the computing goroutine fails, waiters
// blocked on its in-flight channel must wake, re-attempt the
// computation themselves, and succeed — not inherit the first
// caller's error or hang on a stranded slot.
func TestDoCtxFailedComputeDoesNotPoisonWaiters(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	firstEntered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do(nil, "k", func() (*Entry, error) {
			close(firstEntered)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("first caller: err = %v, want boom", err)
		}
	}()

	<-firstEntered
	const waiters = 8
	var recomputes atomic.Int64
	for range [waiters]struct{}{} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, err := c.Do(nil, "k", func() (*Entry, error) {
				recomputes.Add(1)
				return testEntry(), nil
			})
			if err != nil || ent == nil || ent.Cost != 4.5 {
				t.Errorf("waiter: ent=%v err=%v, want healthy entry", ent, err)
			}
		}()
	}
	// Give the waiters time to park on the in-flight channel, then
	// fail the first computation.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := recomputes.Load(); n < 1 {
		t.Errorf("no waiter re-attempted after the failed compute")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	// The error itself must never have been cached.
	ent, err := c.Do(nil, "k", func() (*Entry, error) {
		t.Error("compute re-ran for a cached key")
		return nil, nil
	})
	if err != nil || ent == nil {
		t.Fatalf("cached read: ent=%v err=%v", ent, err)
	}
}

// TestDoCtxPanicReleasesSlot asserts the panic ladder: a panicking
// compute propagates to its own caller, but releases the in-flight
// slot and wakes waiters, leaving the cache uncorrupted.
func TestDoCtxPanicReleasesSlot(t *testing.T) {
	c := New()
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		c.Do(nil, "k", func() (*Entry, error) {
			close(entered)
			time.Sleep(20 * time.Millisecond)
			panic("compute crashed")
		})
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		ent, err := c.Do(nil, "k", func() (*Entry, error) { return testEntry(), nil })
		if err != nil || ent == nil {
			t.Errorf("waiter after panic: ent=%v err=%v", ent, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after compute panic")
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (no corruption)", st.Entries)
	}
}

// TestDoCtxCancellation: a waiter whose own context dies while
// another goroutine computes gets its context error; a caller with an
// already-dead context never runs compute at all.
func TestDoCtxCancellation(t *testing.T) {
	c := New()
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(nil, "k", func() (*Entry, error) {
			close(entered)
			<-release
			return testEntry(), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.DoCtx(ctx, nil, "k", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter: err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.DoCtx(dead, nil, "other", func() (*Entry, error) {
		t.Error("compute ran under a dead context")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("dead-context caller: err = %v", err)
	}
}

// TestDoCtxFaultInjection arms the evcache.compute site and asserts
// the injected error surfaces to the caller, is not cached, and that
// a retry (the arm spent) recomputes cleanly.
func TestDoCtxFaultInjection(t *testing.T) {
	inj, err := fault.New(1, fault.SiteEvcacheCompute+":error@1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := fault.With(context.Background(), inj)
	c := New()
	ran := false
	_, err = c.DoCtx(ctx, nil, "k", func() (*Entry, error) {
		ran = true
		return testEntry(), nil
	})
	if !fault.IsInjected(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if ran {
		t.Error("compute ran despite the injected fault")
	}
	ent, err := c.DoCtx(ctx, nil, "k", func() (*Entry, error) { return testEntry(), nil })
	if err != nil || ent == nil {
		t.Fatalf("retry after injected fault: ent=%v err=%v", ent, err)
	}
}
