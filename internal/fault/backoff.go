package fault

import (
	"context"
	"time"
)

// Backoff is a deterministic jittered exponential-backoff schedule:
// the retry ladder's answer to "how long do I wait before trying
// again". The delay before retry k doubles from Base, saturates at
// Cap, and is half fixed / half jittered, with the jitter drawn from
// the same seeded splitmix64 stream the injector uses — two schedules
// built from equal (Seed, Tag) produce identical delays, so a
// fault-armed run that retries is as reproducible as one that does
// not. The zero value is a usable schedule with conservative
// defaults (one retry after ~2ms).
//
// Consumers: the flow's optimize retry ladder (replacing its original
// immediate single retry) and the serve daemon's Retry-After hints,
// which map shed pressure onto the same curve so clients back off in
// step with the server's own schedule.
type Backoff struct {
	Base time.Duration // delay before the first retry (default 2ms)
	Cap  time.Duration // upper bound on any single delay (default 1s)
	// Attempts is the total number of attempts permitted, including
	// the first (default 2 — i.e. one retry).
	Attempts int
	Seed     int64
	Tag      string // jitter stream tag; pair with Seed for reproducibility
}

func (b Backoff) maxAttempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 2
}

func (b Backoff) baseDelay() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 2 * time.Millisecond
}

func (b Backoff) capDelay() time.Duration {
	c := b.Cap
	if c <= 0 {
		c = time.Second
	}
	if base := b.baseDelay(); c < base {
		c = base
	}
	return c
}

// Delay returns the pause before retry number retry (1-based: the
// wait between attempt retry and attempt retry+1). The exponential
// term is capped before jittering, so the result is always in
// [d/2, d] for d = min(Cap, Base<<(retry-1)) — bounded, monotone in
// expectation, and a pure function of (Seed, Tag, retry).
func (b Backoff) Delay(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := b.baseDelay()
	capd := b.capDelay()
	// Shift with saturation: past ~62 doublings (or once the cap is
	// reached) the exponential term is just the cap.
	for i := 1; i < retry && d < capd; i++ {
		if d > capd/2 {
			d = capd
			break
		}
		d <<= 1
	}
	if d > capd {
		d = capd
	}
	half := d / 2
	return half + Jitter(b.Seed, b.Tag, retry, half+1)
}

// Next reports whether another attempt is permitted after attempts
// full attempts (1-based), and the delay to wait before it. The
// terminal attempt returns (0, false).
func (b Backoff) Next(attempts int) (time.Duration, bool) {
	if attempts < 1 || attempts >= b.maxAttempts() {
		return 0, false
	}
	return b.Delay(attempts), true
}

// Sleep waits for d or until ctx is done, whichever comes first,
// returning the context's error in the latter case. A non-positive d
// returns immediately (after a ctx check), so callers can pass a
// schedule's delay unconditionally.
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
