package fault

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Attempts: 5, Seed: 7, Tag: "x"}
	b := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Attempts: 5, Seed: 7, Tag: "x"}
	for k := 1; k <= 8; k++ {
		if a.Delay(k) != b.Delay(k) {
			t.Fatalf("retry %d: equal schedules disagree: %v != %v", k, a.Delay(k), b.Delay(k))
		}
	}
	c := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Attempts: 5, Seed: 8, Tag: "x"}
	same := true
	for k := 1; k <= 8; k++ {
		if a.Delay(k) != c.Delay(k) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical 8-delay schedule")
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Cap: 100 * time.Millisecond, Attempts: 10, Seed: 1, Tag: "b"}
	for k := 1; k <= 20; k++ {
		d := b.Delay(k)
		// Every delay sits in [expd/2, expd] for the capped
		// exponential expd = min(Cap, Base<<(k-1)).
		expd := 8 * time.Millisecond << (k - 1)
		if k > 10 || expd > b.Cap || expd <= 0 {
			expd = b.Cap
		}
		if d < expd/2 || d > expd {
			t.Errorf("retry %d: delay %v outside [%v, %v]", k, d, expd/2, expd)
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if _, ok := b.Next(1); !ok {
		t.Error("zero-value schedule should permit one retry")
	}
	if _, ok := b.Next(2); ok {
		t.Error("zero-value schedule permitted a second retry (want 2 attempts total)")
	}
	d := b.Delay(1)
	if d <= 0 || d > 2*time.Millisecond {
		t.Errorf("zero-value first delay %v outside (0, 2ms]", d)
	}
}

func TestBackoffNext(t *testing.T) {
	b := Backoff{Attempts: 3, Base: time.Millisecond, Seed: 3, Tag: "n"}
	if _, ok := b.Next(0); ok {
		t.Error("Next(0) permitted a retry before any attempt")
	}
	for attempts := 1; attempts <= 2; attempts++ {
		if d, ok := b.Next(attempts); !ok || d <= 0 {
			t.Errorf("Next(%d) = (%v, %v), want a positive delay", attempts, d, ok)
		}
	}
	if _, ok := b.Next(3); ok {
		t.Error("Next(3) permitted a fourth attempt with Attempts=3")
	}
}

func TestBackoffCapBelowBase(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: time.Millisecond, Seed: 1, Tag: "c"}
	if d := b.Delay(1); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("cap below base: delay %v should honor the base (want [25ms, 50ms])", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v, want nil", err)
	}
	start := time.Now()
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Errorf("Sleep(1ms) = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Sleep(1ms) slept absurdly long")
	}
}
