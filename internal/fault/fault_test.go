package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"primopt/internal/obs"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteSpiceOP); err != nil {
		t.Fatalf("nil injector Hit: %v", err)
	}
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if in.Spec() != "" || in.Hits(SiteSpiceOP) != 0 || in.Armed() != nil {
		t.Fatal("nil injector leaks state")
	}
}

func TestEmptySpecIsNil(t *testing.T) {
	in, err := New(1, "  ")
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("empty spec should return a nil injector")
	}
}

func TestErrorAtNthHit(t *testing.T) {
	in, err := New(1, "spice.op:error@3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := in.Hit(SiteSpiceOP)
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: expected injected error", i)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != SiteSpiceOP || fe.Hit != 3 {
				t.Fatalf("hit %d: wrong error %v", i, err)
			}
			if !IsInjected(err) {
				t.Fatalf("IsInjected(%v) = false", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := in.Hits(SiteSpiceOP); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestErrorFromNthHitOn(t *testing.T) {
	in, err := New(1, "route.net:error@2+")
	if err != nil {
		t.Fatal(err)
	}
	if in.Hit(SiteRouteNet) != nil {
		t.Fatal("hit 1 should pass")
	}
	for i := 2; i <= 4; i++ {
		if in.Hit(SiteRouteNet) == nil {
			t.Fatalf("hit %d should fail", i)
		}
	}
}

func TestPanicMode(t *testing.T) {
	in, err := New(1, "place.replica:panic@1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Site != SitePlaceReplica {
			t.Fatalf("recovered %v, want *fault.Error at place.replica", r)
		}
	}()
	in.Hit(SitePlaceReplica)
	t.Fatal("Hit should have panicked")
}

func TestDelayMode(t *testing.T) {
	in, err := New(1, "extract:delay=30ms@1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Hit(SiteExtract); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay fired too fast: %v", d)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		in, err := New(seed, "spice.dc:error~0.3")
		if err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 1; i <= 200; i++ {
			if in.Hit(SiteSpiceDC) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 over 200 hits fired %d times — stream looks broken", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different firing sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestMultiSiteSpec(t *testing.T) {
	in, err := New(1, "spice.op:error@1, route.net:panic@2")
	if err != nil {
		t.Fatal(err)
	}
	armed := in.Armed()
	if len(armed) != 2 || armed[0] != "route.net" || armed[1] != "spice.op" {
		t.Fatalf("Armed = %v", armed)
	}
	if !in.Enabled() {
		t.Fatal("armed injector reports disabled")
	}
	// Unarmed site stays free.
	if err := in.Hit(SiteEvcacheCompute); err != nil {
		t.Fatalf("unarmed site: %v", err)
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"spice.op",                          // no mode
		"nosuch.site:error@1",               // unknown site
		"spice.op:explode@1",                // unknown mode
		"spice.op:error@0",                  // bad index
		"spice.op:error@x",                  // bad index
		"spice.op:delay@1",                  // delay without duration
		"spice.op:delay=zzz@1",              // bad duration
		"spice.op:error=5@1",                // value on non-delay mode
		"spice.op:error~1.5",                // bad probability
		"spice.op:error@2~0.5",              // @N with ~P
		"spice.op:error@1,spice.op:panic@2", // duplicate site
	}
	for _, spec := range bad {
		if _, err := New(1, spec); err == nil {
			t.Errorf("New(%q) accepted a bad spec", spec)
		}
	}
}

func TestCountersEmitted(t *testing.T) {
	tr := obs.New()
	in, err := New(1, "spice.op:error@1+")
	if err != nil {
		t.Fatal(err)
	}
	in.Trace = tr
	in.Hit(SiteSpiceOP)
	in.Hit(SiteSpiceOP)
	if got := tr.Counter("fault.injected").Value(); got != 2 {
		t.Fatalf("fault.injected = %d, want 2", got)
	}
	if got := tr.Counter("fault.injected.spice.op").Value(); got != 2 {
		t.Fatalf("fault.injected.spice.op = %d, want 2", got)
	}
}

func TestContextCarriage(t *testing.T) {
	in, err := New(1, "extract:error@1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := With(context.Background(), in)
	if got := From(ctx); got != in {
		t.Fatalf("From(ctx) = %p, want %p", got, in)
	}
	if got := From(context.Background()); got != Default() {
		t.Fatalf("From(background) should fall back to Default")
	}
	// With(nil injector) is a no-op.
	if ctx2 := With(context.Background(), nil); From(ctx2) != Default() {
		t.Fatal("With(nil) should not shadow the default")
	}
}

func TestDefaultInstall(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	in, err := New(1, "spice.tran:error@1")
	if err != nil {
		t.Fatal(err)
	}
	SetDefault(in)
	if From(context.Background()) != in {
		t.Fatal("From should pick up the installed default")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) should clear")
	}
}

func TestErrorText(t *testing.T) {
	e := &Error{Site: "spice.op", Hit: 3}
	if !strings.Contains(e.Error(), "spice.op") || !strings.Contains(e.Error(), "3") {
		t.Fatalf("error text %q missing site/hit", e.Error())
	}
	if IsInjected(errors.New("organic")) {
		t.Fatal("organic error reported as injected")
	}
}
