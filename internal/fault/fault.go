// Package fault is a deterministic, seedable fault-injection harness
// for the layout flow. Production code declares named sites — points
// where an external failure (a non-converged solve, a crashed worker,
// a stalled simulator) could occur — and tests or the -fault-spec CLI
// flag arm those sites to force an error, a panic, or a delay at a
// chosen hit. An armed run is reproducible from (seed, spec) alone:
// the same arming fires at the same hits in the same order.
//
// The package follows internal/obs's nil-safety contract: every
// method works on a nil *Injector and does nothing, so the disabled
// path costs a single nil check and no allocation. Sites resolve
// their injector once (from a context or the process-wide default)
// and then call Hit in hot loops without further lookups.
package fault

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"primopt/internal/obs"
)

// Site names armable by spec. Each constant is the string a spec term
// uses and the suffix of the fault.injected.<site> counter emitted
// when the site fires.
const (
	SiteSpiceOP        = "spice.op"        // operating-point solve entry
	SiteSpiceDC        = "spice.dc"        // one damped-Newton DC solve
	SiteSpiceTran      = "spice.tran"      // transient analysis entry
	SiteSpiceTranStep  = "spice.tran.step" // one transient timestep
	SiteRouteNet       = "route.net"       // one net's A* search
	SiteEvcacheCompute = "evcache.compute" // one cache-miss computation
	SiteEvcacheDisk    = "evcache.disk"    // one disk-tier record read
	SitePlaceReplica   = "place.replica"   // one annealing replica
	SiteExtract        = "extract"         // one primitive extraction
)

// Sites lists every armable site, for CLI help and spec validation.
func Sites() []string {
	return []string{
		SiteSpiceOP, SiteSpiceDC, SiteSpiceTran, SiteSpiceTranStep,
		SiteRouteNet, SiteEvcacheCompute, SiteEvcacheDisk, SitePlaceReplica, SiteExtract,
	}
}

// Mode is what an armed site does when it fires.
type Mode int

// Fire behaviors.
const (
	ModeError Mode = iota // Hit returns an *Error
	ModePanic             // Hit panics with an *Error value
	ModeDelay             // Hit sleeps for the armed duration, then returns nil
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Error is the injected failure. Sites return it from Hit (mode
// error) or panic with it (mode panic), so recovery paths can tell an
// injected fault from an organic one with errors.As / IsInjected.
type Error struct {
	Site string
	Hit  int // 1-based hit index at which the site fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected failure at %s (hit %d)", e.Site, e.Hit)
}

// IsInjected reports whether err (anywhere in its chain) is an
// injected fault.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*Error); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// arm is one parsed spec term.
type arm struct {
	site string
	mode Mode
	n    int           // fire at the n-th hit (1-based); 0 with prob>0
	from bool          // @N+ — fire at every hit from the n-th on
	prob float64       // ~P — fire each hit with probability P (seeded)
	dur  time.Duration // delay mode only
}

// armState is an arm plus its runtime hit counter and PRNG stream.
type armState struct {
	arm
	hits int
	rng  uint64 // splitmix64 state, seeded per (Injector.seed, site)
}

// Injector holds the armed sites of one run. The zero value and nil
// are both valid, disabled injectors. Concurrency-safe: worker pools
// hit sites from many goroutines.
type Injector struct {
	// Trace, when set, receives the fault.injected counters; nil
	// falls back to obs.Default(). Set it before the injector is
	// shared across goroutines.
	Trace *obs.Trace

	seed int64
	spec string

	mu   sync.Mutex
	arms map[string]*armState
}

// New parses a spec and returns an armed injector. The spec is a
// comma-separated list of terms:
//
//	site:mode[@N[+]][~P]
//
// where mode is error, panic, or delay=DURATION (Go duration syntax),
// @N fires at exactly the N-th hit of the site (default @1), @N+
// fires at every hit from the N-th on, and ~P instead fires each hit
// independently with probability P drawn from a deterministic stream
// seeded by (seed, site). An empty spec returns (nil, nil): no
// injection, zero cost.
func New(seed int64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{seed: seed, spec: spec, arms: map[string]*armState{}}
	known := map[string]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	for _, term := range strings.Split(spec, ",") {
		a, err := parseTerm(strings.TrimSpace(term))
		if err != nil {
			return nil, fmt.Errorf("fault: spec %q: %w", term, err)
		}
		if !known[a.site] {
			return nil, fmt.Errorf("fault: spec %q: unknown site %q (want one of %s)",
				term, a.site, strings.Join(Sites(), ", "))
		}
		if _, dup := in.arms[a.site]; dup {
			return nil, fmt.Errorf("fault: spec %q: site %q armed twice", term, a.site)
		}
		in.arms[a.site] = &armState{arm: a, rng: seedFor(seed, a.site)}
	}
	return in, nil
}

// parseTerm parses one site:mode[@N[+]][~P] spec term.
func parseTerm(term string) (arm, error) {
	a := arm{n: 1}
	site, rest, ok := strings.Cut(term, ":")
	if !ok || site == "" || rest == "" {
		return a, fmt.Errorf("want site:mode[@N[+]][~P]")
	}
	a.site = site
	if i := strings.IndexByte(rest, '~'); i >= 0 {
		p, err := strconv.ParseFloat(rest[i+1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return a, fmt.Errorf("bad probability %q (want 0 < P <= 1)", rest[i+1:])
		}
		a.prob, a.n = p, 0
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		at := rest[i+1:]
		if strings.HasSuffix(at, "+") {
			a.from = true
			at = strings.TrimSuffix(at, "+")
		}
		n, err := strconv.Atoi(at)
		if err != nil || n < 1 {
			return a, fmt.Errorf("bad hit index %q (want @N or @N+, N >= 1)", rest[i+1:])
		}
		if a.prob > 0 {
			return a, fmt.Errorf("@N and ~P are mutually exclusive")
		}
		a.n = n
		rest = rest[:i]
	}
	mode, durStr, hasDur := strings.Cut(rest, "=")
	switch mode {
	case "error":
		a.mode = ModeError
	case "panic":
		a.mode = ModePanic
	case "delay":
		a.mode = ModeDelay
		if !hasDur {
			return a, fmt.Errorf("delay needs a duration (delay=50ms)")
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d < 0 {
			return a, fmt.Errorf("bad delay duration %q", durStr)
		}
		a.dur = d
		hasDur = false
	default:
		return a, fmt.Errorf("unknown mode %q (want error, panic, or delay=DURATION)", mode)
	}
	if hasDur {
		return a, fmt.Errorf("mode %q takes no =value", mode)
	}
	return a, nil
}

// seedFor derives the per-site PRNG seed: splitmix64 over the run
// seed xor an FNV-1a hash of the site name, so each site draws an
// independent deterministic stream.
func seedFor(seed int64, site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return uint64(seed) ^ h
}

// splitmix64 advances the stream and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Spec returns the spec string the injector was built from.
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// Enabled reports whether any site is armed.
func (in *Injector) Enabled() bool { return in != nil && len(in.arms) > 0 }

// Hit registers one hit of a site. If the site is armed and this hit
// fires, Hit returns an *Error (mode error), panics with an *Error
// (mode panic), or sleeps and returns nil (mode delay). Unarmed
// sites and nil injectors return nil immediately.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.arms[site]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	st.hits++
	hit := st.hits
	fire := false
	switch {
	case st.prob > 0:
		// Deterministic per-site stream: one draw per hit.
		fire = float64(splitmix64(&st.rng)>>11)/float64(1<<53) < st.prob
	case st.from:
		fire = hit >= st.n
	default:
		fire = hit == st.n
	}
	mode, dur := st.mode, st.dur
	in.mu.Unlock()
	if !fire {
		return nil
	}
	in.trace().Counter("fault.injected").Inc()
	//lint:allow spanhygiene site names come from the finite fault-spec grammar and are stable for a given (seed, spec)
	in.trace().Counter("fault.injected." + site).Inc()
	fe := &Error{Site: site, Hit: hit}
	switch mode {
	case ModePanic:
		//lint:allow errflow ModePanic is the injector's contract: the armed site must panic so recovery ladders can be exercised
		panic(fe)
	case ModeDelay:
		if dur > 0 {
			time.Sleep(dur)
		}
		return nil
	}
	return fe
}

// Hits returns how many times a site has been hit so far (armed
// sites only; unarmed sites are not counted).
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.arms[site]; ok {
		return st.hits
	}
	return 0
}

// Armed returns the armed site names, sorted.
func (in *Injector) Armed() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.arms))
	for s := range in.arms {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (in *Injector) trace() *obs.Trace {
	if in.Trace != nil {
		return in.Trace
	}
	return obs.Default()
}

// ---- context carriage and process-wide default ----

type ctxKey struct{}

// With returns a context carrying the injector. A nil injector is
// fine: From will fall through to the process default.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the context's injector, or the process-wide default
// when the context carries none. The result may be nil (disabled) —
// all methods are nil-safe, so callers use it without checking.
func From(ctx context.Context) *Injector {
	if ctx != nil {
		if in, ok := ctx.Value(ctxKey{}).(*Injector); ok {
			return in
		}
	}
	return Default()
}

var defaultInjector atomic.Pointer[Injector]

// Default returns the process-wide injector installed by SetDefault
// (nil when none is installed — the normal production state).
func Default() *Injector { return defaultInjector.Load() }

// SetDefault installs the process-wide injector (the -fault-spec flag
// does this once at startup). Pass nil to disable.
func SetDefault(in *Injector) { defaultInjector.Store(in) }

// Jitter returns a deterministic duration in [0, max) drawn from a
// stream seeded by (seed, tag) — used by tests that need reproducible
// "random" delays without wall-clock dependence.
func Jitter(seed int64, tag string, idx int, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	st := seedFor(seed, tag)
	var v uint64
	for i := 0; i <= idx; i++ {
		v = splitmix64(&st)
	}
	f := float64(v>>11) / float64(1<<53)
	d := time.Duration(math.Floor(f * float64(max)))
	if d >= max {
		d = max - 1
	}
	return d
}
