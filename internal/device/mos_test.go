package device

import (
	"math"
	"testing"
	"testing/quick"

	"primopt/internal/circuit"
	"primopt/internal/pdk"
)

var tech = pdk.Default()

func nmos(nfin, nf, m int) *circuit.Device {
	d := &circuit.Device{Name: "m1", Type: circuit.NMOS, Nets: []string{"d", "g", "s", "b"}}
	d.SetParam("nfin", float64(nfin))
	d.SetParam("nf", float64(nf))
	d.SetParam("m", float64(m))
	d.SetParam("l", float64(tech.GateL))
	return d
}

func pmos(nfin, nf, m int) *circuit.Device {
	d := nmos(nfin, nf, m)
	d.Type = circuit.PMOS
	return d
}

func TestNMOSCutoffAndConduction(t *testing.T) {
	d := nmos(8, 4, 1)
	off := EvalMOS(tech, d, 0.8, 0, 0, 0)
	on := EvalMOS(tech, d, 0.8, 0.6, 0, 0)
	if off.Ids < 0 {
		t.Errorf("cutoff leakage negative: %g", off.Ids)
	}
	if on.Ids < 1e-5 {
		t.Errorf("on current too small: %g", on.Ids)
	}
	if off.Ids > on.Ids*1e-3 {
		t.Errorf("off current %g not tiny vs on %g", off.Ids, on.Ids)
	}
}

func TestNMOSCurrentMagnitude(t *testing.T) {
	// 96 fins at 0.2 V overdrive should conduct mA-class current in a
	// 7nm-class node.
	d := nmos(8, 12, 1)
	st := EvalMOS(tech, d, 0.8, tech.VthN+0.2, 0, 0)
	if st.Ids < 100e-6 || st.Ids > 50e-3 {
		t.Errorf("Ids = %g A, want 0.1..50 mA", st.Ids)
	}
}

func TestPMOSPolarity(t *testing.T) {
	d := pmos(8, 4, 1)
	// PMOS source at vdd, gate low: conducts with Ids < 0 (current
	// flows out of the drain node into the channel from source).
	on := EvalMOS(tech, d, 0, 0, 0.8, 0.8)
	if on.Ids >= 0 {
		t.Errorf("conducting PMOS Ids = %g, want < 0", on.Ids)
	}
	off := EvalMOS(tech, d, 0, 0.8, 0.8, 0.8)
	if math.Abs(off.Ids) > math.Abs(on.Ids)*1e-3 {
		t.Errorf("PMOS off current %g not tiny", off.Ids)
	}
	// For a conducting PMOS, raising Vg reduces conduction, moving the
	// (negative) drain current toward zero: dIds/dVg > 0.
	if on.GdVg <= 0 {
		t.Errorf("PMOS GdVg = %g, want > 0", on.GdVg)
	}
}

func TestSourceDrainSymmetry(t *testing.T) {
	// Swapping D and S must exactly negate the current (the model
	// enforces this by construction).
	d := nmos(4, 4, 1)
	a := EvalMOS(tech, d, 0.3, 0.6, 0.1, 0)
	b := EvalMOS(tech, d, 0.1, 0.6, 0.3, 0)
	if math.Abs(a.Ids+b.Ids) > 1e-15*math.Max(1, math.Abs(a.Ids)) {
		t.Errorf("symmetry violated: %g vs %g", a.Ids, -b.Ids)
	}
	// At Vds = 0 the current is exactly 0.
	z := EvalMOS(tech, d, 0.2, 0.6, 0.2, 0)
	if z.Ids != 0 {
		t.Errorf("Ids at Vds=0: %g", z.Ids)
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	d := nmos(8, 8, 2)
	biases := [][4]float64{
		{0.5, 0.5, 0.0, 0.0},  // saturation
		{0.05, 0.6, 0.0, 0.0}, // triode
		{0.4, 0.25, 0.0, 0.0}, // subthreshold
		{0.4, 0.5, 0.1, 0.0},  // source degeneration
		{0.1, 0.5, 0.3, 0.0},  // reverse mode
	}
	const h = 1e-7
	for _, bias := range biases {
		vd, vg, vs, vb := bias[0], bias[1], bias[2], bias[3]
		st := EvalMOS(tech, d, vd, vg, vs, vb)
		checks := []struct {
			name string
			got  float64
			f    func(x float64) float64
			at   float64
		}{
			{"GdVd", st.GdVd, func(x float64) float64 { return EvalMOS(tech, d, x, vg, vs, vb).Ids }, vd},
			{"GdVg", st.GdVg, func(x float64) float64 { return EvalMOS(tech, d, vd, x, vs, vb).Ids }, vg},
			{"GdVs", st.GdVs, func(x float64) float64 { return EvalMOS(tech, d, vd, vg, x, vb).Ids }, vs},
			{"GdVb", st.GdVb, func(x float64) float64 { return EvalMOS(tech, d, vd, vg, vs, x).Ids }, vb},
		}
		for _, c := range checks {
			num := (c.f(c.at+h) - c.f(c.at-h)) / (2 * h)
			scale := math.Max(math.Abs(num), math.Abs(c.got))
			if scale < 1e-12 {
				continue
			}
			if math.Abs(num-c.got)/scale > 1e-3 {
				t.Errorf("bias %v: %s analytic %g vs numeric %g", bias, c.name, c.got, num)
			}
		}
	}
}

func TestDerivativeZeroSum(t *testing.T) {
	// Common-mode invariance: the four terminal derivatives sum to 0.
	f := func(vdr, vgr, vsr uint8) bool {
		vd := float64(vdr) / 255 * 0.8
		vg := float64(vgr) / 255 * 0.8
		vs := float64(vsr) / 255 * 0.8
		d := nmos(4, 2, 1)
		st := EvalMOS(tech, d, vd, vg, vs, 0)
		sum := st.GdVd + st.GdVg + st.GdVs + st.GdVb
		scale := math.Max(1e-9, math.Abs(st.GdVd)+math.Abs(st.GdVg))
		return math.Abs(sum)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSaturationCLM(t *testing.T) {
	// In saturation, Ids grows weakly with Vds (finite output
	// resistance) — the CLM that the paper's Rout metric relies on.
	d := nmos(8, 4, 1)
	i1 := EvalMOS(tech, d, 0.5, 0.6, 0, 0).Ids
	i2 := EvalMOS(tech, d, 0.7, 0.6, 0, 0).Ids
	if i2 <= i1 {
		t.Error("no channel-length modulation")
	}
	if (i2-i1)/i1 > 0.1 {
		t.Errorf("CLM too strong: %.1f%% over 0.2 V", 100*(i2-i1)/i1)
	}
	st := EvalMOS(tech, d, 0.6, 0.6, 0, 0)
	if st.GdVd <= 0 {
		t.Error("Gds must be positive in saturation")
	}
	if st.GdVg < 10*st.GdVd {
		t.Errorf("gm (%g) should dominate gds (%g) in saturation", st.GdVg, st.GdVd)
	}
}

func TestWidthScaling(t *testing.T) {
	// Doubling total fins doubles current (same bias, ignoring LDE).
	d1 := nmos(8, 4, 1)
	d2 := nmos(8, 4, 2)
	i1 := EvalMOS(tech, d1, 0.5, 0.6, 0, 0).Ids
	i2 := EvalMOS(tech, d2, 0.5, 0.6, 0, 0).Ids
	if math.Abs(i2/i1-2) > 1e-9 {
		t.Errorf("fin doubling current ratio = %g", i2/i1)
	}
}

func TestLDEHooksShiftCurrent(t *testing.T) {
	d := nmos(8, 4, 1)
	base := EvalMOS(tech, d, 0.5, 0.5, 0, 0).Ids
	d.SetParam("dvth", 0.02) // higher Vth -> less current
	hi := EvalMOS(tech, d, 0.5, 0.5, 0, 0).Ids
	if hi >= base {
		t.Errorf("dvth=+20mV should cut current: %g vs %g", hi, base)
	}
	d.SetParam("dvth", 0)
	d.SetParam("dmu", 0.9) // degraded mobility
	lo := EvalMOS(tech, d, 0.5, 0.5, 0, 0).Ids
	if lo >= base {
		t.Errorf("dmu=0.9 should cut current: %g vs %g", lo, base)
	}
	if math.Abs(lo/base-0.9) > 0.02 {
		t.Errorf("strong-inversion current should scale ~with mobility: ratio %g", lo/base)
	}
}

func TestCapacitancesPositiveAndPartition(t *testing.T) {
	d := nmos(8, 4, 1)
	sat := EvalMOS(tech, d, 0.6, 0.6, 0, 0)
	for name, c := range map[string]float64{
		"Cgs": sat.Cgs, "Cgd": sat.Cgd, "Cgb": sat.Cgb,
		"Cdb": sat.Cdb, "Csb": sat.Csb,
	} {
		if c < 0 || math.IsNaN(c) {
			t.Errorf("%s = %g", name, c)
		}
	}
	// Saturation: Cgs (intrinsic 2/3) well above Cgd (overlap only).
	if sat.Cgs <= sat.Cgd {
		t.Errorf("saturation Cgs %g should exceed Cgd %g", sat.Cgs, sat.Cgd)
	}
	// Triode: partition roughly equal.
	tri := EvalMOS(tech, d, 0.02, 0.8, 0, 0)
	if r := tri.Cgs / tri.Cgd; r < 0.8 || r > 1.3 {
		t.Errorf("triode Cgs/Cgd = %g, want ~1", r)
	}
	// Subthreshold: gate-bulk cap dominates intrinsic part.
	sub := EvalMOS(tech, d, 0.4, 0.1, 0, 0)
	if sub.Cgb < sat.Cgb {
		t.Error("Cgb should be larger in subthreshold than in strong inversion")
	}
}

func TestJunctionCapFromExtraction(t *testing.T) {
	d := nmos(8, 4, 1)
	base := EvalMOS(tech, d, 0.4, 0.6, 0, 0)
	d.SetParam("ad", 1e6) // huge drain diffusion
	d.SetParam("pd", 1e4)
	big := EvalMOS(tech, d, 0.4, 0.6, 0, 0)
	if big.Cdb <= base.Cdb {
		t.Error("explicit diffusion area should raise Cdb")
	}
	if big.Csb != base.Csb {
		t.Error("source junction must be unaffected")
	}
}

func TestContinuityAcrossRegions(t *testing.T) {
	// Sweep Vgs through threshold and Vds through 0: Ids and GdVg
	// must be continuous (no model-binning jumps).
	d := nmos(4, 4, 1)
	prev := math.NaN()
	for vg := 0.0; vg <= 0.8; vg += 0.001 {
		i := EvalMOS(tech, d, 0.4, vg, 0, 0).Ids
		if !math.IsNaN(prev) {
			// Subthreshold current grows ~e^(dVg/nVt) ≈ 3%/mV, so allow
			// a 5% relative step; anything larger is a model-binning jump.
			if math.Abs(i-prev) > 0.05*(math.Abs(i)+1e-9) {
				t.Fatalf("Ids jump at vg=%.3f: %g -> %g", vg, prev, i)
			}
		}
		prev = i
	}
	prev = math.NaN()
	for vd := -0.2; vd <= 0.2; vd += 0.0005 {
		i := EvalMOS(tech, d, vd, 0.6, 0, 0).Ids
		if !math.IsNaN(prev) && math.Abs(i-prev) > 5e-5 {
			t.Fatalf("Ids jump at vd=%.4f: %g -> %g", vd, prev, i)
		}
		prev = i
	}
}

func TestTotalFins(t *testing.T) {
	if TotalFins(nmos(8, 20, 6)) != 960 {
		t.Error("TotalFins wrong")
	}
	bare := &circuit.Device{Name: "m", Type: circuit.NMOS, Nets: []string{"d", "g", "s", "b"}}
	if TotalFins(bare) != 1 {
		t.Error("default fins should be 1")
	}
}

func TestGmGdsAccessors(t *testing.T) {
	d := nmos(8, 4, 1)
	st := EvalMOS(tech, d, 0.6, 0.6, 0, 0)
	if st.Gm() != st.GdVg || st.Gds() != st.GdVd {
		t.Error("accessors disagree with fields")
	}
}
