// Package device implements the compact models evaluated by the MNA
// simulator: a smooth EKV-style FinFET model (continuous from
// subthreshold through saturation, with channel-length modulation,
// bias-dependent intrinsic capacitances, overlap and junction
// capacitances, and LDE hooks), plus time-domain evaluation of the
// independent-source waveforms.
//
// The paper's methodology relies on "cheap SPICE simulations" of
// primitives whose devices respond to (a) series parasitic R at their
// terminals, (b) added C on their nets, and (c) LDE-induced Vth and
// mobility shifts. This model is built to capture exactly those
// sensitivities with guaranteed Newton-friendly smoothness.
package device

import (
	"math"

	"primopt/internal/circuit"
	"primopt/internal/pdk"
)

// Vt is the thermal voltage at room temperature (V).
const Vt = 0.02585

// MOSState is the full small-signal + large-signal evaluation of a
// FinFET at one bias point. Current sign convention: Ids flows into
// the drain terminal and out of the source terminal (negative for a
// conducting PMOS).
type MOSState struct {
	Ids float64 // A

	// Conductances: partial derivatives of the drain current with
	// respect to each terminal voltage. GdVb = -(GdVd+GdVg+GdVs)
	// because a common-mode shift leaves Ids unchanged.
	GdVd, GdVg, GdVs, GdVb float64

	// Capacitances between terminals at this bias (F, >= 0).
	Cgs, Cgd, Cgb, Cdb, Csb float64
}

// Gm returns the gate transconductance.
func (s MOSState) Gm() float64 { return s.GdVg }

// Gds returns the output conductance.
func (s MOSState) Gds() float64 { return s.GdVd }

// mosGeom captures the geometry-derived quantities of a device.
type mosGeom struct {
	weff   float64 // total electrical width, nm
	l      float64 // gate length, nm
	beta   float64 // µCox W/L with LDE mobility factor, A/V^2
	vth    float64 // threshold incl. LDE shift, V
	lambda float64
	n      float64 // subthreshold slope factor
	cgg    float64 // intrinsic gate capacitance, F
	cov    float64 // overlap cap per side, F
	cjd    float64 // drain junction cap, F
	cjs    float64 // source junction cap, F
}

func geometry(t *pdk.Tech, d *circuit.Device) mosGeom {
	nfin := d.Param("nfin", 1)
	nf := d.Param("nf", 1)
	m := d.Param("m", 1)
	l := d.Param("l", float64(t.GateL))
	if l <= 0 {
		l = float64(t.GateL)
	}
	fins := nfin * nf * m
	if fins < 1 {
		fins = 1
	}
	weff := fins * t.FinW()

	var u0, vth0, lambda float64
	if d.Type == circuit.NMOS {
		u0, vth0, lambda = t.U0N, t.VthN, t.LambdaN
	} else {
		u0, vth0, lambda = t.U0P, t.VthP, t.LambdaP
	}
	// LDE hooks attached by extraction: additive Vth shift and
	// multiplicative mobility factor.
	vth := vth0 + d.Param("dvth", 0)
	mu := u0 * d.Param("dmu", 1)

	// Overlap capacitance scales with the physical gate edge length
	// (fin pitch × fins), not the electrical width (which counts the
	// fin sidewalls and would overstate the overlap ~3×).
	widthPhys := nfin * m * float64(t.FinPitch)
	g := mosGeom{
		weff:   weff,
		l:      l,
		beta:   mu * t.Cox * weff / l,
		vth:    vth,
		lambda: lambda,
		n:      t.SSn,
		cgg:    t.Cox * weff * l,
		cov:    t.CovPerW * widthPhys * nf,
	}

	// Junction capacitance: extraction provides exact diffusion areas
	// ("ad"/"as" nm^2, "pd"/"ps" nm); the fallback is the idealized
	// fully-shared estimate (interior diffusion extension, half
	// allocation per device) that schematic-level simulation assumes.
	defArea := widthPhys * float64(t.DiffExt) / 2
	defPerim := widthPhys + float64(t.DiffExt)
	ad := d.Param("ad", defArea)
	as := d.Param("as", defArea)
	pd := d.Param("pd", defPerim)
	ps := d.Param("ps", defPerim)
	g.cjd = t.CjArea*ad + t.CjPerim*pd
	g.cjs = t.CjArea*as + t.CjPerim*ps
	return g
}

// ekvF is the EKV interpolation function F(v) = ln^2(1 + e^{v/2}),
// smooth from weak (exponential) to strong (quadratic) inversion.
func ekvF(v float64) float64 {
	l := softlog(v)
	return l * l
}

// ekvFPrime is dF/dv = ln(1+e^{v/2}) * sigmoid(v/2).
func ekvFPrime(v float64) float64 {
	return softlog(v) * sigmoidHalf(v)
}

// ekvFBoth returns F(v) and F'(v) sharing one exponential.
func ekvFBoth(v float64) (f, fp float64) {
	switch {
	case v > 80:
		l := v / 2
		return l * l, l
	case v < -80:
		e := math.Exp(v / 2)
		return e * e, e
	default:
		e := math.Exp(v / 2)
		l := math.Log1p(e)
		return l * l, l * e / (1 + e)
	}
}

// softlog returns ln(1+e^{v/2}) with overflow-safe asymptotics.
func softlog(v float64) float64 {
	if v > 80 {
		return v / 2
	}
	if v < -80 {
		return math.Exp(v / 2)
	}
	return math.Log1p(math.Exp(v / 2))
}

// sigmoidHalf returns 1/(1+e^{-v/2}).
func sigmoidHalf(v float64) float64 {
	if v > 80 {
		return 1
	}
	if v < -80 {
		return math.Exp(v / 2)
	}
	return 1 / (1 + math.Exp(-v/2))
}

// EvalContext caches a device's geometry-derived constants so the
// simulator's inner loops avoid re-reading the parameter maps at
// every Newton iteration.
type EvalContext struct {
	g   mosGeom
	isP bool
}

// NewContext precomputes the evaluation context for a MOS device.
func NewContext(t *pdk.Tech, d *circuit.Device) *EvalContext {
	return &EvalContext{g: geometry(t, d), isP: d.Type == circuit.PMOS}
}

// Eval evaluates the device at the given terminal voltages.
func (c *EvalContext) Eval(vd, vg, vs, vb float64) MOSState {
	var st MOSState
	c.EvalInto(&st, vd, vg, vs, vb)
	return st
}

// EvalInto evaluates the device at the given terminal voltages,
// writing the state through st. The stamp loops call this once per
// device per Newton iteration; writing in place avoids copying the
// ten-field state struct through a return value each time.
func (c *EvalContext) EvalInto(st *MOSState, vd, vg, vs, vb float64) {
	if c.isP {
		// Evaluate the mirrored NMOS and flip current + derivative
		// signs: I_P(v) = -I_N(-v), dI_P/dv_x = dI_N/du_x evaluated
		// at u = -v.
		evalNMOSCore(st, &c.g, -vd, -vg, -vs, -vb)
		st.Ids = -st.Ids
		return
	}
	evalNMOSCore(st, &c.g, vd, vg, vs, vb)
}

// EvalMOS evaluates the FinFET d of type NMOS/PMOS at the given
// terminal voltages (drain, gate, source, bulk). Callers with hot
// loops should construct an EvalContext once instead.
func EvalMOS(t *pdk.Tech, d *circuit.Device, vd, vg, vs, vb float64) MOSState {
	return NewContext(t, d).Eval(vd, vg, vs, vb)
}

// evalNMOSCore computes the NMOS characteristics with source/drain
// symmetry enforced by swapping so the "drain" is the higher
// potential, writing the result through st.
func evalNMOSCore(st *MOSState, g *mosGeom, vd, vg, vs, vb float64) {
	swapped := vd < vs
	if swapped {
		vd, vs = vs, vd
	}
	// Bulk-referenced EKV.
	vgb := vg - vb
	vsb := vs - vb
	vdb := vd - vb
	vp := (vgb - g.vth) / g.n

	uf := (vp - vsb) / Vt
	ur := (vp - vdb) / Vt
	iff, fpf := ekvFBoth(uf)
	irr, fpr := ekvFBoth(ur)

	ispec := 2 * g.n * g.beta * Vt * Vt
	vds := vdb - vsb // >= 0 after swap
	clm := 1 + g.lambda*vds

	ids := ispec * (iff - irr) * clm

	// Derivatives w.r.t. (vd, vg, vs); bulk from the zero-sum rule.
	gdvg := ispec * clm * (fpf - fpr) / (g.n * Vt)
	gdvd := ispec * (clm*fpr/Vt + (iff-irr)*g.lambda)
	gdvs := ispec * (-clm*fpf/Vt - (iff-irr)*g.lambda)
	gdvb := -(gdvg + gdvd + gdvs)

	// Bias-dependent intrinsic capacitance partition. inv in [0, 1)
	// tracks inversion strength; sat in [0, 1] tracks saturation.
	inv := iff / (1 + iff)
	sat := 0.0
	if iff+irr > 1e-30 {
		sat = (iff - irr) / (iff + irr)
	}
	cgs := g.cgg * inv * (0.5 + sat/6.0)
	cgd := g.cgg * inv * 0.5 * (1 - sat)
	cgb := g.cgg * (1 - inv) * 0.4

	st.Ids = ids
	st.GdVd, st.GdVg, st.GdVs, st.GdVb = gdvd, gdvg, gdvs, gdvb
	st.Cgs = cgs + g.cov
	st.Cgd = cgd + g.cov
	st.Cgb = cgb
	st.Cdb = g.cjd
	st.Csb = g.cjs
	if swapped {
		// Undo the swap: exchange drain/source roles everywhere.
		st.Ids = -st.Ids
		st.GdVd, st.GdVs = -st.GdVs, -st.GdVd
		st.GdVg = -st.GdVg
		st.GdVb = -st.GdVb
		st.Cgs, st.Cgd = st.Cgd, st.Cgs
		st.Cdb, st.Csb = st.Csb, st.Cdb
	}
}

// TotalFins returns nfin*nf*m for a MOS device (min 1).
func TotalFins(d *circuit.Device) int {
	n := int(d.Param("nfin", 1) * d.Param("nf", 1) * d.Param("m", 1))
	if n < 1 {
		return 1
	}
	return n
}

// SourceValueAt returns the instantaneous value of a V/I source at
// time tm, honoring PULSE, SIN, and PWL waveforms and falling back to
// the DC value.
func SourceValueAt(d *circuit.Device, tm float64) float64 {
	return SourceValue(d.Param("dc", 0), d.Wave, tm)
}

// SourceValue is the cached-parameter form of SourceValueAt: callers
// that evaluate a source every integration step resolve the DC value
// from the parameter map once and pass it here, keeping the per-step
// path free of map lookups.
func SourceValue(dc float64, w *circuit.SourceWave, tm float64) float64 {
	if w == nil {
		return dc
	}
	switch w.Kind {
	case "pulse":
		return pulseAt(w.Args, tm)
	case "sin":
		return sinAt(w.Args, tm)
	case "pwl":
		return pwlAt(w.Times, w.Vals, tm)
	default:
		return dc
	}
}

func pulseAt(a []float64, tm float64) float64 {
	// v1 v2 td tr tf pw per
	get := func(i int, def float64) float64 {
		if i < len(a) {
			return a[i]
		}
		return def
	}
	v1 := get(0, 0)
	v2 := get(1, 0)
	td := get(2, 0)
	tr := get(3, 1e-12)
	tf := get(4, 1e-12)
	pw := get(5, 1e-9)
	per := get(6, 0)
	if tr <= 0 {
		tr = 1e-15
	}
	if tf <= 0 {
		tf = 1e-15
	}
	if tm < td {
		return v1
	}
	t := tm - td
	if per > 0 {
		t = math.Mod(t, per)
	}
	switch {
	case t < tr:
		return v1 + (v2-v1)*t/tr
	case t < tr+pw:
		return v2
	case t < tr+pw+tf:
		return v2 + (v1-v2)*(t-tr-pw)/tf
	default:
		return v1
	}
}

func sinAt(a []float64, tm float64) float64 {
	get := func(i int, def float64) float64 {
		if i < len(a) {
			return a[i]
		}
		return def
	}
	vo := get(0, 0)
	va := get(1, 0)
	freq := get(2, 0)
	td := get(3, 0)
	theta := get(4, 0)
	if tm < td {
		return vo
	}
	t := tm - td
	damp := 1.0
	if theta != 0 {
		damp = math.Exp(-t * theta)
	}
	return vo + va*damp*math.Sin(2*math.Pi*freq*t)
}

func pwlAt(times, vals []float64, tm float64) float64 {
	n := len(times)
	if n == 0 {
		return 0
	}
	if tm <= times[0] {
		return vals[0]
	}
	for i := 1; i < n; i++ {
		if tm <= times[i] {
			span := times[i] - times[i-1]
			if span <= 0 {
				return vals[i]
			}
			f := (tm - times[i-1]) / span
			return vals[i-1] + f*(vals[i]-vals[i-1])
		}
	}
	return vals[n-1]
}
