package device

import (
	"math"
	"testing"

	"primopt/internal/circuit"
)

func vsrc(wave *circuit.SourceWave, dc float64) *circuit.Device {
	d := &circuit.Device{Name: "v1", Type: circuit.VSource, Nets: []string{"p", "0"}}
	d.SetParam("dc", dc)
	d.Wave = wave
	return d
}

func TestSourceDCOnly(t *testing.T) {
	d := vsrc(nil, 0.8)
	if SourceValueAt(d, 0) != 0.8 || SourceValueAt(d, 1) != 0.8 {
		t.Error("DC source not constant")
	}
	// Unknown wave kind falls back to DC.
	d2 := vsrc(&circuit.SourceWave{Kind: "mystery"}, 0.5)
	if SourceValueAt(d2, 1e-9) != 0.5 {
		t.Error("unknown wave should fall back to DC")
	}
}

func TestPulseWaveform(t *testing.T) {
	// v1=0 v2=1 td=1n tr=1n tf=1n pw=2n per=10n
	w := &circuit.SourceWave{Kind: "pulse", Args: []float64{0, 1, 1e-9, 1e-9, 1e-9, 2e-9, 10e-9}}
	d := vsrc(w, 0)
	cases := []struct{ tm, want float64 }{
		{0, 0},         // before delay
		{1e-9, 0},      // start of rise
		{1.5e-9, 0.5},  // mid rise
		{2e-9, 1},      // top
		{3.9e-9, 1},    // still high
		{4.5e-9, 0.5},  // mid fall
		{6e-9, 0},      // low
		{11.5e-9, 0.5}, // periodic repeat: mid rise of cycle 2
		{13e-9, 1},     // cycle 2 high
	}
	for _, c := range cases {
		if got := SourceValueAt(d, c.tm); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("pulse(%g) = %g, want %g", c.tm, got, c.want)
		}
	}
}

func TestPulseDegenerateEdges(t *testing.T) {
	// Zero rise/fall must not divide by zero.
	w := &circuit.SourceWave{Kind: "pulse", Args: []float64{0, 1, 0, 0, 0, 1e-9, 0}}
	d := vsrc(w, 0)
	if v := SourceValueAt(d, 0.5e-9); v != 1 {
		t.Errorf("flat-top value = %g", v)
	}
	if v := SourceValueAt(d, 5e-9); v != 0 {
		t.Errorf("after pulse = %g", v)
	}
	// Short args list uses defaults without panicking.
	w2 := &circuit.SourceWave{Kind: "pulse", Args: []float64{0, 1}}
	_ = SourceValueAt(vsrc(w2, 0), 1e-9)
}

func TestSinWaveform(t *testing.T) {
	w := &circuit.SourceWave{Kind: "sin", Args: []float64{0.4, 0.1, 1e9}}
	d := vsrc(w, 0.4)
	if got := SourceValueAt(d, 0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("sin(0) = %g", got)
	}
	quarter := 0.25e-9
	if got := SourceValueAt(d, quarter); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("sin(T/4) = %g, want 0.5", got)
	}
	// Delay holds the offset.
	wd := &circuit.SourceWave{Kind: "sin", Args: []float64{0.4, 0.1, 1e9, 1e-9}}
	if got := SourceValueAt(vsrc(wd, 0.4), 0.5e-9); got != 0.4 {
		t.Errorf("delayed sin = %g", got)
	}
	// Damping shrinks amplitude.
	wt := &circuit.SourceWave{Kind: "sin", Args: []float64{0, 1, 1e9, 0, 1e9}}
	v1 := SourceValueAt(vsrc(wt, 0), 0.25e-9)
	if v1 >= 1 || v1 <= 0 {
		t.Errorf("damped sin = %g", v1)
	}
}

func TestPWLWaveform(t *testing.T) {
	w := &circuit.SourceWave{Kind: "pwl",
		Times: []float64{0, 1e-9, 2e-9},
		Vals:  []float64{0, 1, 0.5}}
	d := vsrc(w, 0)
	cases := []struct{ tm, want float64 }{
		{-1, 0}, {0, 0}, {0.5e-9, 0.5}, {1e-9, 1}, {1.5e-9, 0.75}, {2e-9, 0.5}, {9, 0.5},
	}
	for _, c := range cases {
		if got := SourceValueAt(d, c.tm); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("pwl(%g) = %g, want %g", c.tm, got, c.want)
		}
	}
	// Duplicate time points (step) pick the later value.
	ws := &circuit.SourceWave{Kind: "pwl",
		Times: []float64{0, 1e-9, 1e-9}, Vals: []float64{0, 0, 1}}
	if got := SourceValueAt(vsrc(ws, 0), 1e-9); got != 0 {
		// At exactly the first matching point the earlier segment wins;
		// just ensure no NaN/panic and a value from {0,1}.
		if got != 1 {
			t.Errorf("step pwl = %g", got)
		}
	}
	// Empty PWL.
	we := &circuit.SourceWave{Kind: "pwl"}
	if got := SourceValueAt(vsrc(we, 0), 1); got != 0 {
		t.Errorf("empty pwl = %g", got)
	}
}
