// StrongARM comparator through the full flow (the comparator half of
// Table VI): the clocked regenerative comparator's decision delay and
// power, schematic vs conventional vs optimized layout.
//
// The comparator's primitives are the input differential pair, the
// NMOS and PMOS cross-coupled regeneration pairs, and the PMOS
// precharge switches (Fig. 3 of the paper); the delay depends on the
// parasitics at the internal and output nodes, which is where the
// primitive optimization earns its keep.
//
//	go run ./examples/strongarm
package main

import (
	"fmt"
	"log"

	"primopt/internal/circuits"
	"primopt/internal/flow"
	"primopt/internal/pdk"
	"primopt/internal/report"
)

func main() {
	tech := pdk.Default()
	bm, err := circuits.StrongARM(tech)
	if err != nil {
		log.Fatal(err)
	}

	results := map[flow.Mode]*flow.Result{}
	for _, mode := range []flow.Mode{flow.Schematic, flow.Conventional, flow.Optimized} {
		r, err := flow.Run(tech, bm, mode, flow.Params{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = r
	}

	tb := report.New("StrongARM comparator (Table VI)",
		"Metric", "Schematic", "Conventional", "This work")
	tb.Add("Delay (ps)",
		fmt.Sprintf("%.4g", results[flow.Schematic].Metrics["delay"]*1e12),
		fmt.Sprintf("%.4g", results[flow.Conventional].Metrics["delay"]*1e12),
		fmt.Sprintf("%.4g", results[flow.Optimized].Metrics["delay"]*1e12))
	tb.Add("Power (uW)",
		fmt.Sprintf("%.4g", results[flow.Schematic].Metrics["power"]*1e6),
		fmt.Sprintf("%.4g", results[flow.Conventional].Metrics["power"]*1e6),
		fmt.Sprintf("%.4g", results[flow.Optimized].Metrics["power"]*1e6))
	fmt.Print(tb.String())

	sch := results[flow.Schematic].Metrics["delay"]
	conv := results[flow.Conventional].Metrics["delay"]
	opt := results[flow.Optimized].Metrics["delay"]
	fmt.Printf("\ndelay penalty vs schematic: conventional +%.0f%%, this work +%.0f%%\n",
		100*(conv-sch)/sch, 100*(opt-sch)/sch)
	fmt.Println("(paper: conventional +82%, this work +64% — same ordering)")
}
