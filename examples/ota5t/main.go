// Full hierarchical flow on the high-frequency 5T OTA (the paper's
// Fig. 6 and the OTA half of Table VI): schematic -> per-primitive
// Algorithm 1 -> placement over the optimized variants -> global
// routing -> Algorithm 2 port optimization -> post-layout simulation,
// compared against the schematic and the conventional geometric flow.
//
//	go run ./examples/ota5t
package main

import (
	"fmt"
	"log"
	"strings"

	"primopt/internal/circuits"
	"primopt/internal/flow"
	"primopt/internal/pdk"
	"primopt/internal/report"
)

func main() {
	tech := pdk.Default()
	bm, err := circuits.OTA5T(tech)
	if err != nil {
		log.Fatal(err)
	}

	p := flow.Params{Seed: 1}
	results := map[flow.Mode]*flow.Result{}
	for _, mode := range []flow.Mode{flow.Schematic, flow.Conventional, flow.Optimized} {
		r, err := flow.Run(tech, bm, mode, p)
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = r
		fmt.Printf("%-12s: %8s, %d SPICE runs\n", mode, r.Runtime.Round(1e6), r.Sims)
	}
	opt := results[flow.Optimized]

	// The primitive choices Algorithm 1 made.
	fmt.Println("\nPer-primitive optimization (Algorithm 1):")
	for name, pr := range opt.PrimResults {
		best := pr.Best()
		fmt.Printf("  %-5s %-24s cost %5.1f  (%d options, %d sims)\n",
			name, best.Layout.Config.ID(), best.Cost,
			len(pr.AllOptions), pr.TotalSims())
	}

	// The placement and global routes (Fig. 6(b)).
	fmt.Println("\nPlacement and global routing:")
	fmt.Printf("  floorplan %d x %d nm, HPWL %d nm\n",
		opt.Placement.BBox.W(), opt.Placement.BBox.H(), opt.Placement.HPWL)
	for name, nr := range opt.Routing.Nets {
		if nr.TotalLength() == 0 {
			continue
		}
		fmt.Printf("  net %-5s: %5d nm on %s, %d vias\n",
			name, nr.TotalLength(), tech.Metals[nr.DominantLayer()].Name, nr.Vias)
	}

	// The detailed-router requirements (Fig. 6(c)): parallel route
	// counts per net and symmetric pairs from Algorithm 2.
	fmt.Println("\nPort optimization (Algorithm 2) routing constraints:")
	fmt.Print(indent(opt.RouterConstraints(bm), "  "))

	// Table VI's OTA rows.
	tb := report.New("\n5T OTA comparison (Table VI)",
		"Metric", "Schematic", "Conventional", "This work")
	for _, m := range bm.MetricOrder {
		tb.Add(fmt.Sprintf("%s (%s)", m, bm.MetricUnit[m]),
			fmt.Sprintf("%.5g", results[flow.Schematic].Metrics[m]),
			fmt.Sprintf("%.5g", results[flow.Conventional].Metrics[m]),
			fmt.Sprintf("%.5g", results[flow.Optimized].Metrics[m]))
	}
	fmt.Print(tb.String())
}

func indent(s, pre string) string {
	out := ""
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += pre + ln + "\n"
	}
	return out
}
