// Quickstart: optimize a single primitive end to end.
//
// This walks the public surface in the order a user meets it:
// pick a primitive from the library, give its sizing and circuit bias,
// run Algorithm 1 (selection over all layout configurations plus wire
// tuning), and inspect the layout options handed to the placer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"primopt/internal/optimize"
	"primopt/internal/pdk"
	"primopt/internal/primlib"
	"primopt/internal/units"
)

func main() {
	tech := pdk.Default()

	// A differential pair sized like the paper's running example:
	// nfin*nf*m = 960 fins per side at L = 14 nm.
	entry := primlib.DiffPair
	sizing := primlib.Sizing{TotalFins: 960, L: tech.GateL}

	// Bias conditions come from the circuit-level schematic
	// simulation in a full flow; here we state them directly.
	bias := primlib.Bias{
		Vdd:   0.8,
		VCM:   0.45,   // input common mode
		VD:    0.4,    // drain operating point
		ITail: 100e-6, // tail current
		CLoad: 5e-15,  // external load per drain
	}

	res, err := optimize.Optimize(tech, entry, sizing, bias, optimize.Params{Bins: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schematic reference: Gm = %sA/V, Ctotal = %sF, offset = %sV\n",
		units.Format(res.Schematic.Values["Gm"], 3),
		units.Format(res.Schematic.Values["Ctotal"], 3),
		units.Format(res.Schematic.Values["offset"], 2))
	fmt.Printf("evaluated %d layout configurations with %d SPICE runs\n\n",
		len(res.AllOptions), res.TotalSims())

	fmt.Println("options handed to the placer (one per aspect-ratio bin):")
	for _, opt := range res.Selected {
		cfg := opt.Layout.Config
		fmt.Printf("  bin %d: %-26s  %4d x %4d nm  cost %5.1f  source wires x%d\n",
			opt.Bin+1, cfg.ID(),
			opt.Layout.BBox.W(), opt.Layout.BBox.H(),
			opt.Cost, opt.Layout.Wires["s"].NWires)
		for _, v := range opt.Values {
			fmt.Printf("         %s\n", v)
		}
	}

	best := res.Best()
	fmt.Printf("\nbest option: %s (cost %.1f, Gm %sA/V vs schematic %sA/V)\n",
		best.Layout.Config.ID(), best.Cost,
		units.Format(best.Eval.Values["Gm"], 3),
		units.Format(res.Schematic.Values["Gm"], 3))
}
