// The paper's motivating experiment (Fig. 2 and Table I): the
// common-source amplifier's wire-width RC trade-off.
//
// The drain net of a common-source stage trades resistance against
// capacitance: narrow wires cost gm (and bias current) through series
// resistance, wide wires cost bandwidth through capacitance, and the
// optimized width recovers schematic-level performance. This example
// regenerates both the circuit-level view (Fig. 2) and the
// primitive-level metrics behind it (Table I).
//
//	go run ./examples/csamp
package main

import (
	"fmt"
	"log"

	"primopt/internal/paper"
	"primopt/internal/pdk"
)

func main() {
	tech := pdk.Default()

	fig2, err := paper.Fig2(tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig2.String())
	fmt.Println()

	t1, err := paper.Table1(tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t1.String())
	fmt.Println()
	fmt.Println("Reading the shape: the optimized column tracks the schematic;")
	fmt.Println("narrow wires lose Gm and current to series resistance, wide")
	fmt.Println("wires pay capacitance (Cout) for marginal resistance gains.")
}
