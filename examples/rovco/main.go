// Differential ring-oscillator VCO through the full flow (Table VII):
// oscillation frequency versus control voltage for the schematic, the
// conventional geometric layout, and the optimized layout.
//
// Each stage is a current-starved inverter — the primitive whose
// delay/current/gain trade-off the paper optimizes — and the VCO
// exposes the consequences directly: conventional layout parasitics
// depress the maximum frequency and clip the usable control range,
// while the optimized primitives restore both.
//
// The example uses four stages so it finishes in seconds; the paper's
// (and the benchmark harness's) configuration is eight.
//
//	go run ./examples/rovco
package main

import (
	"fmt"
	"log"

	"primopt/internal/circuits"
	"primopt/internal/flow"
	"primopt/internal/pdk"
)

func main() {
	tech := pdk.Default()
	bm, err := circuits.ROVCO(tech, 4)
	if err != nil {
		log.Fatal(err)
	}

	vctrls := []float64{0.40, 0.45, 0.50, 0.60, 0.80}
	fmt.Println("VCO tuning curves (GHz; '-' = no oscillation):")
	fmt.Printf("%-14s", "vctrl (V)")
	for _, v := range vctrls {
		fmt.Printf("%8.2f", v)
	}
	fmt.Println()

	for _, mode := range []flow.Mode{flow.Schematic, flow.Conventional, flow.Optimized} {
		r, err := flow.Run(tech, bm, mode, flow.Params{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		nl := bm.Schematic
		if r.Netlist != nil {
			nl = r.Netlist
		}
		fmt.Printf("%-14s", mode)
		for _, v := range vctrls {
			f, ok, err := circuits.EvalVCOAt(tech, nl, v)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("%8s", "-")
			} else {
				fmt.Printf("%8.2f", f*1e-9)
			}
		}
		fmt.Printf("   (fmax %.2f GHz)\n", r.Metrics["fmax"]*1e-9)
	}
	fmt.Println("\nThe conventional row oscillates over a narrower control range")
	fmt.Println("and tops out lower — the paper's Table VII shape.")
}
