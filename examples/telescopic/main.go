// Extension circuit: a telescopic cascode OTA through the full flow.
//
// The paper closes with "this work can readily be extended"; this
// example demonstrates it. The telescopic OTA's input pair is the
// cascoded-pair primitive (diffpair_cascode), whose cascode devices
// shield the inputs from the output routes — so, compared to the 5T
// OTA, the conventional-vs-optimized gap concentrates in bandwidth
// while the (much higher) gain survives layout in both flows.
//
//	go run ./examples/telescopic
package main

import (
	"fmt"
	"log"

	"primopt/internal/circuits"
	"primopt/internal/flow"
	"primopt/internal/pdk"
	"primopt/internal/report"
)

func main() {
	tech := pdk.Default()
	bm, err := circuits.Telescopic(tech)
	if err != nil {
		log.Fatal(err)
	}

	results := map[flow.Mode]*flow.Result{}
	for _, mode := range []flow.Mode{flow.Schematic, flow.Conventional, flow.Optimized} {
		r, err := flow.Run(tech, bm, mode, flow.Params{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = r
	}

	tb := report.New("Telescopic cascode OTA (extension circuit)",
		"Metric", "Schematic", "Conventional", "This work")
	for _, m := range bm.MetricOrder {
		tb.Add(fmt.Sprintf("%s (%s)", m, bm.MetricUnit[m]),
			fmt.Sprintf("%.5g", results[flow.Schematic].Metrics[m]),
			fmt.Sprintf("%.5g", results[flow.Conventional].Metrics[m]),
			fmt.Sprintf("%.5g", results[flow.Optimized].Metrics[m]))
	}
	fmt.Print(tb.String())

	ota, err := circuits.OTA5T(tech)
	if err != nil {
		log.Fatal(err)
	}
	otaSch, err := flow.Run(tech, ota, flow.Schematic, flow.Params{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntelescopic gain %.1f dB vs 5T OTA %.1f dB — the cascode's gm·ro boost,\n",
		results[flow.Schematic].Metrics["gain_db"], otaSch.Metrics["gain_db"])
	fmt.Println("preserved through layout because the cascode isolates the drain routes.")
}
