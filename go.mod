module primopt

go 1.22
