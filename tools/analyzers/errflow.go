package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow flags silently discarded errors and bare panics in the
// flow-reachable packages (everything under internal/). PR 5 built
// the degradation ladders on the premise that every error surfaces to
// a ladder that can absorb it: a discarded error is a hole in that
// contract, and an unguarded panic rides up through a worker pool
// until optimize.guard or place.safeReplica happens to catch it.
//
// Honors the documented builder-invariant allowlist: functions named
// Must*/must* exist precisely to panic on programmer error with
// literal inputs (circuit.MustAdd, units.MustParse), so panics inside
// them are the contract, not a finding. Error results written into
// *bytes.Buffer and *strings.Builder (directly or via fmt.Fprint*)
// are defined to be nil and are exempt. Everything else needs
// handling or an explicit //lint:allow errflow with a reason.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag discarded errors and bare panics in flow-reachable " +
		"packages, honoring the Must* builder-invariant allowlist",
	Run: runErrFlow,
}

func inErrFlowScope(path string) bool {
	return inFixture(path) || strings.HasPrefix(path, "primopt/internal/")
}

func runErrFlow(p *Pass) {
	if !inErrFlowScope(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrFlow(p, fd)
		}
	}
}

func checkErrFlow(p *Pass, fd *ast.FuncDecl) {
	mustFunc := strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				checkDroppedCall(p, call, "")
			}
		case *ast.DeferStmt:
			checkDroppedCall(p, x.Call, "deferred ")
		case *ast.GoStmt:
			checkDroppedCall(p, x.Call, "goroutine ")
		case *ast.AssignStmt:
			checkBlankErr(p, x)
		case *ast.CallExpr:
			id, ok := x.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if mustFunc {
				return true
			}
			p.Reportf(x.Pos(),
				"bare panic outside a Must* builder-invariant function: return an error so a degradation ladder can absorb it, "+
					"or justify with //lint:allow errflow")
		}
		return true
	})
}

// checkDroppedCall reports a call statement whose results include an
// error that nobody reads.
func checkDroppedCall(p *Pass, call *ast.CallExpr, kind string) {
	if !resultsIncludeError(p, call) || isNilErrorWriter(p, call) {
		return
	}
	if kind == "" {
		// A panic call is a statement, not a dropped error.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return
		}
	}
	p.Reportf(call.Pos(), "%serror result discarded: handle it or justify with //lint:allow errflow", kind)
}

// checkBlankErr reports error values assigned to the blank
// identifier.
func checkBlankErr(p *Pass, as *ast.AssignStmt) {
	blankSlot := func(i int) (ast.Expr, bool) {
		if i >= len(as.Lhs) {
			return nil, false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
		return as.Lhs[i], true
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, _ := f() — slot types come from the call's tuple.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || isNilErrorWriter(p, call) {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if lhs, blank := blankSlot(i); blank && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(),
					"error assigned to blank identifier: handle it or justify with //lint:allow errflow")
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		lhs, blank := blankSlot(i)
		if !blank {
			continue
		}
		tv, ok := p.Info.Types[rhs]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isNilErrorWriter(p, call) {
			continue
		}
		p.Reportf(lhs.Pos(),
			"error assigned to blank identifier: handle it or justify with //lint:allow errflow")
	}
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func resultsIncludeError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

// isNilErrorWriter exempts writes whose error is documented to always
// be nil: methods on *bytes.Buffer and *strings.Builder, and
// fmt.Fprint* writing into one of them.
func isNilErrorWriter(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	if objPkgPath(obj) == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
		if len(call.Args) == 0 {
			return false
		}
		tv, ok := p.Info.Types[call.Args[0]]
		return ok && isBufferLike(tv.Type)
	}
	if recv, ok := p.Info.Types[sel.X]; ok {
		return isBufferLike(recv.Type)
	}
	return false
}

func isBufferLike(t types.Type) bool {
	return typeIs(t, "bytes", "Buffer") || typeIs(t, "strings", "Builder")
}
