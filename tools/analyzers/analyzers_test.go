package analyzers

import (
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package through the real
// loader (so primopt imports resolve against the live tree) and runs
// one analyzer over it.
func loadFixture(t *testing.T, pkg string, a *Analyzer) []Diagnostic {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPackages([]string{"primopt/tools/analyzers/testdata/src/" + pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return Analyze(pkgs[0], l.Fset, []*Analyzer{a})
}

// wantCount counts the "// want:" markers in the fixture — each marks
// exactly one line the analyzer must flag.
func checkDiagnostics(t *testing.T, pkg string, a *Analyzer, want int) {
	t.Helper()
	diags := loadFixture(t, pkg, a)
	if len(diags) != want {
		l, _ := NewLoader(".")
		var msgs []string
		for _, d := range diags {
			msgs = append(msgs, d.Format(l.Fset))
		}
		t.Errorf("%s on %s: %d diagnostics, want %d:\n%s",
			a.Name, pkg, len(diags), want, strings.Join(msgs, "\n"))
	}
}

func TestUnitMixFixture(t *testing.T) {
	checkDiagnostics(t, "unitmixbad", UnitMix, 3)
}

func TestSharedMutFixture(t *testing.T) {
	checkDiagnostics(t, "sharedmutbad", SharedMut, 3)
}

// TestInternalTreeIsClean runs both analyzers over the real internal/
// and cmd/ trees — the lint-clean gate CI enforces.
func TestInternalTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree analysis in -short mode")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPackages([]string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded — pattern resolution broken", len(pkgs))
	}
	for _, p := range pkgs {
		for _, d := range Analyze(p, l.Fset, All()) {
			t.Errorf("%s", d.Format(l.Fset))
		}
	}
}
