package analyzers

import (
	"go/token"
	"strings"
	"sync"
	"testing"
)

// sharedLoader type-checks through one cached loader: every fixture
// resolves primopt imports against the live tree, and stdlib packages
// (type-checked from source) are paid for once per test binary.
var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderInst, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loaderInst
}

func loadPkg(t *testing.T, path string) (*Package, *token.FileSet) {
	t.Helper()
	l := sharedLoader(t)
	pkgs, err := l.LoadPackages([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), path)
	}
	return pkgs[0], l.Fset
}

// checkGolden matches diagnostics against the fixture's "// want"
// markers: a marker on line L expects at least one diagnostic on L or
// L+1, and every diagnostic must sit on a marked line (or the line
// after one). This pins positions without hard-coding them.
func checkGolden(t *testing.T, pkg *Package, fset *token.FileSet, diags []Diagnostic) {
	t.Helper()
	markers := map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "// want") {
					markers[fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	matched := map[int]bool{}
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		switch {
		case markers[line]:
			matched[line] = true
		case markers[line-1]:
			matched[line-1] = true
		default:
			t.Errorf("unexpected diagnostic: %s", d.Format(fset))
		}
	}
	for line := range markers {
		if !matched[line] {
			t.Errorf("%s: marker at line %d produced no diagnostic", pkg.Path, line)
		}
	}
}

// fixture runs one analyzer raw (no suppression) over one testdata
// package and golden-checks the findings.
func fixture(t *testing.T, pkg string, a *Analyzer) {
	t.Helper()
	p, fset := loadPkg(t, "primopt/tools/analyzers/testdata/src/"+pkg)
	checkGolden(t, p, fset, Analyze(p, fset, []*Analyzer{a}))
}

func TestUnitMixFixture(t *testing.T)     { fixture(t, "unitmixbad", UnitMix) }
func TestSharedMutFixture(t *testing.T)   { fixture(t, "sharedmutbad", SharedMut) }
func TestDetOrderFixture(t *testing.T)    { fixture(t, "detorderbad", DetOrder) }
func TestRngPurityFixture(t *testing.T)   { fixture(t, "rngpuritybad", RngPurity) }
func TestCtxPollFixture(t *testing.T)     { fixture(t, "ctxpollbad", CtxPoll) }
func TestSpanHygieneFixture(t *testing.T) { fixture(t, "spanhygienebad", SpanHygiene) }
func TestErrFlowFixture(t *testing.T)     { fixture(t, "errflowbad", ErrFlow) }

// TestAllowMechanism runs the suppression-aware Check over the
// allowbad fixture: justified allows silence their diagnostics, while
// malformed (missing reason, unknown analyzer) and stale allows are
// themselves diagnostics — all golden-checked by position.
func TestAllowMechanism(t *testing.T) {
	p, fset := loadPkg(t, "primopt/tools/analyzers/testdata/src/allowbad")
	diags := Check(p, fset, []*Analyzer{ErrFlow})
	checkGolden(t, p, fset, diags)

	var missingReason, unknown, stale, kept int
	for _, d := range diags {
		switch {
		case d.Analyzer == AllowName && strings.Contains(d.Message, "without a reason"):
			missingReason++
		case d.Analyzer == AllowName && strings.Contains(d.Message, "unknown analyzer"):
			unknown++
		case d.Analyzer == AllowName && strings.Contains(d.Message, "stale"):
			stale++
		case d.Analyzer == ErrFlow.Name:
			kept++
		}
	}
	if missingReason != 1 {
		t.Errorf("missing-reason diagnostics = %d, want 1", missingReason)
	}
	if unknown != 1 {
		t.Errorf("unknown-analyzer diagnostics = %d, want 1", unknown)
	}
	if stale != 1 {
		t.Errorf("stale-allow diagnostics = %d, want 1", stale)
	}
	// The two malformed allows suppress nothing: their errflow
	// findings survive. The two justified allows silence theirs.
	if kept != 2 {
		t.Errorf("surviving errflow diagnostics = %d, want 2", kept)
	}
}

// TestDetOrderCatchesSeededPlaceBug is the acceptance gate for the
// suite: a scratch branch of internal/place seeded with the exact
// PR-4 bug (unsorted map iteration feeding a returned slice, plus the
// map-order float reduction) must be caught by detorder.
func TestDetOrderCatchesSeededPlaceBug(t *testing.T) {
	p, fset := loadPkg(t, "primopt/tools/analyzers/testdata/src/placescratch")
	diags := Analyze(p, fset, []*Analyzer{DetOrder})
	checkGolden(t, p, fset, diags)
	var appendBug, floatBug bool
	for _, d := range diags {
		if strings.Contains(d.Message, "append to returned slice") {
			appendBug = true
		}
		if strings.Contains(d.Message, "float accumulation") {
			floatBug = true
		}
	}
	if !appendBug {
		t.Error("seeded unsorted-map-feeds-returned-slice bug not caught")
	}
	if !floatBug {
		t.Error("seeded map-order float reduction not caught")
	}
}

// TestAllRegistered pins the suite roster: CI and the docs promise
// these analyzers run over the tree.
func TestAllRegistered(t *testing.T) {
	want := []string{"ctxpoll", "detorder", "errflow", "rngpurity", "sharedmut", "spanhygiene", "unitmix"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}

// TestInternalTreeIsClean runs the full suite, suppression-aware,
// over the real internal/ and cmd/ trees — the lint-clean gate CI
// enforces. Every //lint:allow in the tree is validated too: a stale
// or unjustified allow fails this test.
func TestInternalTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree analysis in -short mode")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadPackages([]string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded — pattern resolution broken", len(pkgs))
	}
	for _, p := range pkgs {
		for _, d := range Check(p, l.Fset, All()) {
			t.Errorf("%s", d.Format(l.Fset))
		}
	}
}
