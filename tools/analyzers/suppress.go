package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression: a diagnostic can be silenced with a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the flagged line or on its own line immediately
// above it. The reason is mandatory — an allow without one is itself a
// diagnostic — and so is hitting something: an allow that suppresses
// nothing is reported as stale, so the tree cannot accumulate dead
// waivers as the analyzers or the code evolve. Malformed and unused
// allows are attributed to the pseudo-analyzer "lintallow".

// AllowName is the pseudo-analyzer that owns diagnostics about the
// suppression comments themselves.
const AllowName = "lintallow"

const allowPrefix = "//lint:allow"

// allow is one parsed //lint:allow comment.
type allow struct {
	pos      token.Pos
	line     int    // line the comment sits on
	file     string // file name
	analyzer string
	reason   string
	used     bool
}

// collectAllows parses every //lint:allow comment in the files.
// Malformed comments (missing analyzer or missing reason, or naming
// an analyzer that does not exist) are reported immediately and do
// not suppress anything.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allow, []Diagnostic) {
	var allows []*allow
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Pos: c.Pos(), Analyzer: AllowName,
						Message: "lint:allow without an analyzer name",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					diags = append(diags, Diagnostic{
						Pos: c.Pos(), Analyzer: AllowName,
						Message: "lint:allow names unknown analyzer " + name,
					})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos: c.Pos(), Analyzer: AllowName,
						Message: "lint:allow " + name + " without a reason; a justification is mandatory",
					})
					continue
				}
				p := fset.Position(c.Pos())
				allows = append(allows, &allow{
					pos: c.Pos(), line: p.Line, file: p.Filename,
					analyzer: name, reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return allows, diags
}

// applyAllows filters diags through the allows: a diagnostic is
// suppressed when a well-formed allow for its analyzer sits on the
// same line or the line directly above. Allows that suppressed
// nothing come back as stale-allow diagnostics.
func applyAllows(fset *token.FileSet, diags []Diagnostic, allows []*allow) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	idx := map[key]*allow{}
	for _, a := range allows {
		// An allow covers its own line and the one below it.
		idx[key{a.file, a.line, a.analyzer}] = a
		idx[key{a.file, a.line + 1, a.analyzer}] = a
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if a, ok := idx[key{p.Filename, p.Line, d.Analyzer}]; ok {
			a.used = true
			continue
		}
		kept = append(kept, d)
	}
	for _, a := range allows {
		if !a.used {
			kept = append(kept, Diagnostic{
				Pos: a.pos, Analyzer: AllowName,
				Message: "stale lint:allow " + a.analyzer + ": no diagnostic here to suppress",
			})
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}

// Check runs the analyzers over one package and returns the
// diagnostics that survive //lint:allow suppression, plus any
// diagnostics about the suppression comments themselves. This is the
// entry point the driver and the tree-clean test use; Analyze returns
// the raw, unfiltered findings.
func Check(p *Package, fset *token.FileSet, as []*Analyzer) []Diagnostic {
	// Allows are validated against the full analyzer registry, not just
	// the subset running: an allow for an analyzer that exists but is
	// not in this run must not be misreported as unknown.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range as {
		known[a.Name] = true
	}
	raw := Analyze(p, fset, as)
	allows, bad := collectAllows(fset, p.Files, known)
	out := applyAllows(fset, raw, allows)
	out = append(out, bad...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
