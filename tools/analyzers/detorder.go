package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags map iteration whose nondeterministic order can leak
// into results: appending to a slice that the function returns, or
// accumulating into a float, from inside a `range` over a map. Both
// are the exact bug class fixed by hand in PR 4 (the A* open heap was
// seeded from a map range, and the replica reduction summed float
// costs in map order): runs differ between executions even with a
// fixed seed, because Go randomizes map iteration order.
//
// A returned-slice append is accepted when the function also sorts
// the slice (any call into package sort or slices that mentions the
// variable) — collecting map entries and sorting them is the
// sanctioned pattern. Float accumulation in map order has no such
// rescue: the fix is to iterate sorted keys, so the accumulation is
// flagged unconditionally.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "flag map-iteration order flowing into returned slices or " +
		"float accumulations without an intervening sort",
	Run: runDetOrder,
}

func runDetOrder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncOrder(p, fd)
		}
	}
}

func checkFuncOrder(p *Pass, fd *ast.FuncDecl) {
	returned := returnedObjects(p, fd)
	sorted := sortedObjects(p, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(p, rs.X) {
			return true
		}
		checkMapRangeBody(p, rs, returned, sorted)
		return true
	})
}

// checkMapRangeBody walks one map-range body for order-sensitive
// sinks. Nested map ranges are found by the outer Inspect, so this
// only looks at direct statements (any depth, but sinks are
// attributed to the innermost enclosing map range by virtue of being
// re-visited — duplicate reports on the same position are collapsed
// by the framework's ordering, and in practice nested map ranges over
// the same sink are rare enough that a double report is acceptable
// noise for a determinism gate).
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, returned, sorted map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// append into an escaping slice: out = append(out, ...)
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(as.Lhs) {
					continue
				}
				obj := lhsObject(p, as.Lhs[i])
				if obj == nil || !returned[obj] || sorted[obj] {
					continue
				}
				// The slice must be declared outside the loop: a
				// per-iteration scratch slice carries no cross-key order.
				if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
					continue
				}
				p.Reportf(as.Pos(),
					"append to returned slice %s inside map iteration: order is nondeterministic; sort %s (or iterate sorted keys) before returning",
					obj.Name(), obj.Name())
			}
		}
		// float accumulation: sum += v or sum = sum + v
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN {
			reportFloatAccum(p, rs, as.Lhs[0], as.Pos())
		}
		if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok && (be.Op == token.ADD || be.Op == token.SUB) {
				if sameObject(p, as.Lhs[0], be.X) || sameObject(p, as.Lhs[0], be.Y) {
					reportFloatAccum(p, rs, as.Lhs[0], as.Pos())
				}
			}
		}
		return true
	})
}

func reportFloatAccum(p *Pass, rs *ast.RangeStmt, lhs ast.Expr, pos token.Pos) {
	obj := lhsObject(p, lhs)
	if obj == nil {
		return
	}
	if !isFloat(obj.Type()) {
		return
	}
	// Declared inside the loop: per-iteration, order cannot leak.
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return
	}
	p.Reportf(pos,
		"float accumulation into %s inside map iteration: addition order is nondeterministic; iterate sorted keys",
		obj.Name())
}

// returnedObjects collects every variable mentioned anywhere inside a
// return statement (directly, in composite literals, as call
// arguments) plus the named results — the over-approximation of "this
// value escapes as a result".
func returnedObjects(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range rs.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				// len(s)/cap(s) in a return do not leak element order.
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
						if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
							return false
						}
					}
				}
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// sortedObjects collects variables that appear as arguments to a
// sorting call (package sort or slices) anywhere in the body: a slice
// that is sorted before the function returns has had its map-order
// scrambled into a total order.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		pkg := objPkgPath(obj)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if o := p.Info.Uses[id]; o != nil {
						out[o] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func isMapExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// lhsObject resolves the root variable written by an assignment LHS.
func lhsObject(p *Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

func sameObject(p *Pass, a, b ast.Expr) bool {
	oa, ob := lhsObject(p, a), lhsObject(p, b)
	return oa != nil && oa == ob
}
