package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module without any
// external tooling: module-internal imports ("primopt/...") resolve
// against the module root on disk, everything else falls through to
// the toolchain's source importer (Go ≥ 1.21 ships no pre-compiled
// stdlib export data, so "source" is the only stdlib importer that
// works without invoking the go command).
type Loader struct {
	Fset *token.FileSet

	root   string // module root directory
	module string // module path, e.g. "primopt"
	std    types.Importer
	cache  map[string]*loaded
}

type loaded struct {
	pkg *Package
	err error
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader finds the module root at or above dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyzers: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analyzers: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loaded{},
	}, nil
}

// Import implements types.Importer over module-internal and stdlib
// paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.load(path, nil)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package. The full
// syntax and type info are cached: a package loaded first as a
// dependency and later analyzed as a target must keep the same
// *types.Package identity, or importers checked against the first
// instance reject values of the second.
func (l *Loader) load(path string, info *types.Info) (*Package, error) {
	if c, ok := l.cache[path]; ok {
		if c.err != nil {
			return nil, c.err
		}
		return c.pkg, nil
	}
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.cache[path] = &loaded{err: err}
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			l.cache[path] = &loaded{err: err}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		err := fmt.Errorf("analyzers: no Go files in %s", dir)
		l.cache[path] = &loaded{err: err}
		return nil, err
	}
	if info == nil {
		info = newInfo()
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		l.cache[path] = &loaded{err: err}
		return nil, err
	}
	p := &Package{Path: path, Files: files, Pkg: pkg, Info: info}
	l.cache[path] = &loaded{pkg: p}
	return p, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPackages resolves the given patterns (import paths or directory
// paths relative to the module root; a trailing "/..." recurses) into
// loaded packages.
func (l *Loader) LoadPackages(patterns []string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	addDir := func(dir string) {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		if !hasGoFiles(dir) {
			return
		}
		p := l.module
		if rel != "." {
			p = l.module + "/" + filepath.ToSlash(rel)
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir := pat
		if strings.HasPrefix(pat, l.module) {
			dir = l.dirFor(pat)
		} else if !filepath.IsAbs(pat) {
			dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		}
		if !recursive {
			addDir(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if strings.HasPrefix(d.Name(), ".") && p != dir {
					return filepath.SkipDir
				}
				addDir(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, p := range paths {
		pkg, err := l.load(p, nil)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %s: %w", p, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Analyze runs the given analyzers over one package and returns the
// diagnostics.
func Analyze(p *Package, fset *token.FileSet, as []*Analyzer) []Diagnostic {
	pass := &Pass{Fset: fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
	for _, a := range as {
		pass.current = a
		a.Run(pass)
	}
	pass.current = nil
	return pass.Diagnostics
}
