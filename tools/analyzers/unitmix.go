package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// UnitMix flags additive arithmetic that mixes the codebase's two
// numeric unit regimes: integer nanometers (all geom/pdk dimensions)
// and SI floats (everything electrical — farads, ohms, volts, and the
// values produced by units.Parse). A nanometer quantity converted
// with float64(...) and then added to an SI-scale value is off by
// nine orders of magnitude; the correct pattern multiplies by a scale
// literal first (float64(w) * 1e-9), which this analyzer recognizes
// and accepts.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc: "flag + and - expressions mixing raw nanometer-scale geometry " +
		"values with SI-scale electrical values",
	Run: runUnitMix,
}

// geomPkgs are the packages whose exported values carry nanometers.
var geomPkgs = map[string]bool{
	"primopt/internal/geom": true,
	"primopt/internal/pdk":  true,
}

func runUnitMix(p *Pass) {
	for _, f := range p.Files {
		siVars := collectSIVars(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
				return true
			}
			// Only float arithmetic can mix the regimes: pure int
			// expressions stay in nanometers.
			if t, ok := p.Info.Types[be.X]; !ok || !isFloat(t.Type) {
				return true
			}
			lNano, lSI := classify(p, siVars, be.X)
			rNano, rSI := classify(p, siVars, be.Y)
			if lNano && !lSI && rSI && !rNano {
				p.Reportf(be.OpPos,
					"nanometer-scale geometry value added to SI-scale value; multiply by a scale factor (e.g. 1e-9) first")
			}
			if rNano && !rSI && lSI && !lNano {
				p.Reportf(be.OpPos,
					"SI-scale value added to nanometer-scale geometry value; multiply by a scale factor (e.g. 1e-9) first")
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// collectSIVars finds local variables assigned from units.Parse, so a
// later use of the variable carries the SI marker (one level of
// dataflow — enough for the idiomatic v, err := units.Parse(...)).
func collectSIVars(p *Pass, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !isUnitsParse(p, as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isUnitsParse(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && objPkgPath(obj) == "primopt/internal/units" && obj.Name() == "Parse"
}

// classify walks an expression and reports whether it carries a
// nanometer marker (a float64 conversion of an integer geom/pdk
// quantity) and whether it carries an SI marker (a sub-unity
// scientific-notation literal, a units.Parse call, or a variable fed
// by one). An expression carrying both markers has already been
// scale-converted and is not suspicious.
func classify(p *Pass, siVars map[types.Object]bool, e ast.Expr) (nano, si bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isFloatConv(p, x) && exprMentionsGeom(p, x.Args[0]) {
				nano = true
			}
			if isUnitsParse(p, x) {
				si = true
			}
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil && siVars[obj] {
				si = true
			}
		case *ast.BasicLit:
			if x.Kind == token.FLOAT && isSubUnityExp(x.Value) {
				si = true
			}
		}
		return true
	})
	return nano, si
}

// isFloatConv reports whether call is a conversion to a float type of
// an integer-typed argument.
func isFloatConv(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isFloat(tv.Type) {
		return false
	}
	at, ok := p.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	b, ok := at.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// exprMentionsGeom reports whether the expression references any
// object (field, method, function, constant) from the nanometer
// packages.
func exprMentionsGeom(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if geomPkgs[objPkgPath(obj)] {
			found = true
			return false
		}
		// A variable whose type comes from a nanometer package (e.g. a
		// local pdk.Tech or geom.Rect) counts too.
		if v, ok := obj.(*types.Var); ok {
			if n := namedType(v.Type()); n != nil && geomPkgs[objPkgPath(n.Obj())] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSubUnityExp reports whether a float literal is written in
// scientific notation with a value well below one — the signature of
// an SI-scaled electrical constant (1e-9, 2.5e-15, ...).
func isSubUnityExp(lit string) bool {
	if !strings.ContainsAny(lit, "eE") {
		return false
	}
	v, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return false
	}
	if v < 0 {
		v = -v
	}
	return v != 0 && v < 1e-2
}
