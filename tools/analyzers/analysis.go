// Package analyzers holds the project's custom static analyzers and
// the minimal framework they run on.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is built purely on the standard
// library's go/ast, go/parser, and go/types: this repository takes no
// external dependencies, so the analyzers run through the standalone
// driver in cmd/analyze instead of `go vet -vettool`. The driver
// type-checks packages with the source importer, which works on any
// Go ≥ 1.21 toolchain where no pre-built stdlib export data exists.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	Diagnostics []Diagnostic
	current     *Analyzer // set by Analyze around each Run
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// Reportf records a finding at pos, attributed to the running
// analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	name := ""
	if p.current != nil {
		name = p.current.Name
	}
	p.Diagnostics = append(p.Diagnostics, Diagnostic{
		Pos: pos, Analyzer: name, Message: fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer this package defines, in stable order:
// the two original unit/sharing checks plus the determinism-and-
// robustness suite that mechanically enforces the invariants PRs 3-5
// established by convention.
func All() []*Analyzer {
	return []*Analyzer{
		CtxPoll,
		DetOrder,
		ErrFlow,
		RngPurity,
		SharedMut,
		SpanHygiene,
		UnitMix,
	}
}

// objPkgPath returns the import path of the package an object belongs
// to ("" for universe-scope and builtin objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedType unwraps pointers and aliases down to a named type, if any.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && objPkgPath(obj) == pkgPath
}
