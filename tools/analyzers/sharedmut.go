package analyzers

import (
	"go/ast"
	"go/types"
)

// SharedMut flags mutation, inside a `go func(){...}()` goroutine, of
// pdk.Tech, circuit.Netlist, or circuit.Device values captured from
// the enclosing scope. These types are shared read-mostly across the
// flow's concurrent primitive optimization; a captured pointer
// mutated inside a goroutine is a data race the type system cannot
// see. Mutations of goroutine-local values (declared inside the
// function literal) are fine.
var SharedMut = &Analyzer{
	Name: "sharedmut",
	Doc: "flag mutation of captured pdk.Tech / circuit.Netlist / " +
		"circuit.Device values inside goroutine literals",
	Run: runSharedMut,
}

// sharedTypes are the guarded types, by package path and type name.
var sharedTypes = []struct{ pkg, name string }{
	{"primopt/internal/pdk", "Tech"},
	{"primopt/internal/circuit", "Netlist"},
	{"primopt/internal/circuit", "Device"},
}

// netlistMutators are circuit.Netlist / circuit.Device methods that
// mutate their receiver.
var netlistMutators = map[string]bool{
	"Add": true, "MustAdd": true, "Remove": true, "Annotate": true,
	"RenameNet": true, "Merge": true, "SetParam": true,
}

func runSharedMut(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(p, fl)
			return true
		})
	}
}

func checkGoroutineBody(p *Pass, fl *ast.FuncLit) {
	captured := func(e ast.Expr) (*ast.Ident, bool) {
		id := rootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return nil, false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil, false
		}
		// Captured = declared outside the literal (including its
		// parameter list, which spans from Type.Pos to Body.End).
		if v.Pos() >= fl.Pos() && v.Pos() < fl.End() {
			return nil, false
		}
		if !isSharedType(v.Type()) {
			return nil, false
		}
		return id, true
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				// Writing through a captured pointer: the LHS must be a
				// selector or index chain, not the bare identifier (a
				// plain rebind of the local copy is harmless).
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				if id, ok := captured(lhs); ok {
					p.Reportf(x.Pos(),
						"captured %s mutated inside goroutine", typeLabel(p, id))
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := x.X.(*ast.Ident); !isIdent {
				if id, ok := captured(x.X); ok {
					p.Reportf(x.Pos(),
						"captured %s mutated inside goroutine", typeLabel(p, id))
				}
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !netlistMutators[sel.Sel.Name] {
				return true
			}
			if id, ok := captured(sel.X); ok {
				p.Reportf(x.Pos(),
					"captured %s mutated inside goroutine via %s()", typeLabel(p, id), sel.Sel.Name)
			}
		}
		return true
	})
}

// rootIdent unwraps selector, index, star, and paren chains to the
// base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isSharedType(t types.Type) bool {
	for _, st := range sharedTypes {
		if typeIs(t, st.pkg, st.name) {
			return true
		}
	}
	return false
}

func typeLabel(p *Pass, id *ast.Ident) string {
	if obj := p.Info.Uses[id]; obj != nil {
		if n := namedType(obj.Type()); n != nil {
			return "*" + n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
	}
	return id.Name
}
