// Command analyze runs the project's custom static analyzers
// (unitmix, sharedmut) over module packages. It is the stand-in for
// `go vet -vettool`: the analyzers are built purely on the standard
// library, so no analysis driver dependency is required.
//
// Usage:
//
//	go run ./tools/analyzers/cmd/analyze ./internal/... ./cmd/...
//
// Exit status 1 when any diagnostic is reported.
package main

import (
	"fmt"
	"os"

	"primopt/tools/analyzers"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	l, err := analyzers.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	bad := false
	for _, p := range pkgs {
		for _, d := range analyzers.Analyze(p, l.Fset, analyzers.All()) {
			fmt.Println(d.Format(l.Fset))
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
