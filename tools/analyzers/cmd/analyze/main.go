// Command analyze is the multichecker for the project's custom
// static analyzers — the determinism-and-robustness suite (detorder,
// rngpurity, ctxpoll, spanhygiene, errflow) plus the original unitmix
// and sharedmut checks. It is the stand-in for `go vet -vettool`: the
// analyzers are built purely on the standard library, so no analysis
// driver dependency is required.
//
// Usage:
//
//	go run ./tools/analyzers/cmd/analyze [-json] [-run a,b,...] ./internal/... ./cmd/...
//
// Diagnostics can be suppressed per line with a mandatory-reason
// comment on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Malformed allows (no reason, unknown analyzer) and stale allows
// (suppressing nothing) are themselves diagnostics.
//
// Output: one line per diagnostic (or a JSON array under -json) on
// stdout, and a final greppable summary line on stderr —
// `analyze: FAIL detorder=2 errflow=1 (3 diagnostics)` or
// `analyze: ok (31 packages, 7 analyzers)`. Exit status 1 when any
// diagnostic survives suppression, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"primopt/tools/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	as := analyzers.All()
	if *run != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range as {
			byName[a.Name] = a
		}
		as = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "analyze: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			as = append(as, a)
		}
	}

	l, err := analyzers.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}

	var diags []analyzers.Diagnostic
	for _, p := range pkgs {
		diags = append(diags, analyzers.Check(p, l.Fset, as)...)
	}

	if *jsonOut {
		data, err := analyzers.ToJSON(l.Fset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		for _, d := range diags {
			fmt.Println(d.Format(l.Fset))
		}
	}
	fmt.Fprintln(os.Stderr, analyzers.Summary(diags, len(pkgs), len(as)))
	if len(diags) > 0 {
		os.Exit(1)
	}
}
