package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxPoll flags statically unbounded loops in the solver packages
// that never check for cancellation. PR 5 threaded context through
// every solver inner loop (Newton iterations, transient steps,
// annealing bands, A* expansions) so that deadlines and cancellation
// actually reach the places where the flow spends its time; nothing
// but this analyzer stops the next hot loop from shipping without a
// poll and hanging a canceled request forever.
//
// Unbounded means a `for` with no init/post clause: `for {}` and
// `for cond {}` have no statically evident trip bound. Three-clause
// and `range` loops are bounded by construction and exempt. A loop
// passes when its body (at any depth) references a context.Context
// value — ctx.Err(), ctx.Done(), passing ctx to a callee — or calls a
// same-package function that (transitively) does, which covers
// polling helpers like spice's Engine.canceled.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "flag unbounded loops in solver packages that never poll a " +
		"context for cancellation",
	Run: runCtxPoll,
}

func runCtxPoll(p *Pass) {
	if !inRngScope(p.Pkg.Path()) { // same scope: the deterministic solver packages
		return
	}
	checking := ctxCheckingFuncs(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				fs, ok := n.(*ast.ForStmt)
				if !ok || fs.Init != nil || fs.Post != nil {
					return true
				}
				if mentionsContext(p, fs.Body, checking) {
					return true
				}
				if fs.Cond == nil {
					p.Reportf(fs.For,
						"infinite loop never polls a context for cancellation: check ctx.Err()/ctx.Done() (or a polling helper) in the body")
				} else {
					p.Reportf(fs.For,
						"unbounded condition-only loop never polls a context for cancellation: check ctx.Err()/ctx.Done() (or a polling helper) in the body")
				}
				return true
			})
		}
	}
}

// ctxCheckingFuncs computes the package-local functions that check a
// context, directly or through same-package calls (fixpoint over the
// call graph one package deep; cross-package polling is visible at
// the call site because ctx is passed as an argument).
func ctxCheckingFuncs(p *Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	checking := map[*types.Func]bool{}
	for fn, body := range bodies {
		if containsCtxExpr(p, body) {
			checking[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, body := range bodies {
			if checking[fn] {
				continue
			}
			if callsChecking(p, body, checking) {
				checking[fn] = true
				changed = true
			}
		}
	}
	return checking
}

// containsCtxExpr reports whether any expression in n has static type
// context.Context.
func containsCtxExpr(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		e, ok := m.(ast.Expr)
		if !ok || found {
			return !found
		}
		if tv, ok := p.Info.Types[e]; ok && tv.Type != nil && typeIs(tv.Type, "context", "Context") {
			found = true
			return false
		}
		return true
	})
	return found
}

func callsChecking(p *Pass, n ast.Node, checking map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && checking[fn] {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves the static callee of a call, if it is a named
// function or method.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// mentionsContext reports whether the loop body checks a context:
// either a context.Context-typed expression appears, or a
// same-package ctx-checking function is called.
func mentionsContext(p *Pass, body *ast.BlockStmt, checking map[*types.Func]bool) bool {
	return containsCtxExpr(p, body) || callsChecking(p, body, checking)
}
