// Package detorderbad is analyzer test fodder: it leaks map-iteration
// order into results in the ways detorder must flag — the exact bug
// class PR 4 fixed by hand in the A* heap seeding and the replica
// cost reduction — next to sorted and order-free patterns it must
// accept.
package detorderbad

import (
	"sort"

	"primopt/internal/geom"
)

// badAppend feeds a returned slice straight from a map range: the
// element order differs between runs.
func badAppend(m map[string]geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, r := range m {
		// want: append to returned slice inside map iteration
		out = append(out, r)
	}
	return out
}

// badFloatSum accumulates floats in map order: float addition is not
// associative, so the sum's low bits differ between runs.
func badFloatSum(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w {
		// want: float accumulation inside map iteration
		total += v
	}
	return total
}

// badExplicitSum is the spelled-out accumulation form.
func badExplicitSum(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w {
		// want: total = total + v is the same accumulation
		total = total + v
	}
	return total
}

// goodSortedAppend collects then sorts: map order is scrambled into a
// total order before anything escapes.
func goodSortedAppend(m map[string]geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X0 < out[j].X0 })
	return out
}

// goodSortedKeys iterates sorted keys — no map range feeds the sum.
func goodSortedKeys(w map[string]float64) float64 {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += w[k]
	}
	return total
}

// goodIntCount: integer accumulation is order-independent.
func goodIntCount(m map[string]geom.Rect) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodLocalSlice: the slice never escapes as a result.
func goodLocalSlice(m map[string]geom.Rect) int {
	var scratch []geom.Rect
	for _, r := range m {
		scratch = append(scratch, r)
	}
	return len(scratch)
}
