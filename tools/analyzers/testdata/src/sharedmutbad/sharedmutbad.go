// Package sharedmutbad is analyzer test fodder: it mutates shared
// pdk/circuit values inside goroutines in ways sharedmut must flag,
// next to goroutine-local mutation it must accept.
package sharedmutbad

import (
	"primopt/internal/circuit"
	"primopt/internal/pdk"
)

func bad(t *pdk.Tech, nl *circuit.Netlist) {
	done := make(chan struct{})
	go func() {
		// want: captured tech mutated
		t.FinPitch = 32
		// want: captured netlist mutated through a method
		nl.RenameNet("a", "b")
		close(done)
	}()
	<-done
}

func badDevice(d *circuit.Device) {
	go func() {
		// want: captured device mutated through SetParam
		d.SetParam("nfin", 8)
	}()
}

func good(t *pdk.Tech) {
	done := make(chan struct{})
	go func() {
		// A goroutine-local clone is free to change.
		local := *t
		local.FinPitch = 32
		// Reads of the captured value are fine.
		_ = t.PolyPitch
		close(done)
	}()
	<-done
}

func goodLocalNetlist() {
	go func() {
		nl := circuit.New("scratch")
		nl.RenameNet("x", "y")
	}()
}
