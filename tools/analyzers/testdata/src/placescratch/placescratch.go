// Package placescratch is a scratch branch of internal/place seeded
// with the known PR-4 bug class: before PR 4, the A* open heap was
// seeded by ranging over a node map straight into the visit order,
// so two runs with the same seed expanded nodes in different orders
// and produced different routes. The acceptance gate for the
// determinism suite is that detorder catches exactly this shape — a
// map range feeding a returned slice with no intervening sort.
package placescratch

import "primopt/internal/geom"

// cell mirrors the placer's per-instance record.
type cell struct {
	rect geom.Rect
	net  string
}

// seedVisitOrder is the seeded bug: placement rects keyed by instance
// name feed the initial expansion order through a map range with no
// sort — byte-identical inputs, different output order every run.
func seedVisitOrder(cells map[string]*cell) []geom.Rect {
	var order []geom.Rect
	for _, c := range cells {
		// want: the PR-4 bug class detorder exists to catch
		order = append(order, c.rect)
	}
	return order
}

// netCost is the companion bug from the replica reduction: weighted
// float costs summed in map order drift in the low bits between runs.
func netCost(wl map[string]float64, weight float64) float64 {
	cost := 0.0
	for _, l := range wl {
		// want: float reduction in map order
		cost += weight * l
	}
	return cost
}
