// Package rngpuritybad is analyzer test fodder: it reads wall clocks
// and draws from the global math/rand source the way rngpurity must
// flag inside the deterministic solver packages, next to the
// sanctioned seeded-source pattern it must accept. (Fixture packages
// are always in scope, whatever tree position they model.)
package rngpuritybad

import (
	"math/rand"
	"time"
)

// badClock stamps a result with wall time.
func badClock() int64 {
	// want: time.Now in solver code
	return time.Now().UnixNano()
}

// badElapsed derives a value from a wall-clock interval.
func badElapsed(t0 time.Time) float64 {
	// want: time.Since in solver code
	return time.Since(t0).Seconds()
}

// badGlobalDraw perturbs a solution with the process-global source.
func badGlobalDraw(xs []float64) {
	for i := range xs {
		// want: global rand.Float64
		xs[i] += rand.Float64()
	}
}

// badGlobalPick indexes with the global source.
func badGlobalPick(n int) int {
	// want: global rand.Intn
	return rand.Intn(n)
}

// goodSeeded draws from an explicitly seeded local stream — the
// reproducible pattern the placer uses.
func goodSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// goodDuration does arithmetic on durations without reading a clock.
func goodDuration(d time.Duration) float64 {
	return d.Seconds()
}
