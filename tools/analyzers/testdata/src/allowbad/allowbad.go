// Package allowbad exercises the //lint:allow suppression mechanism:
// a well-formed allow (analyzer + mandatory reason) silences the
// diagnostic on its own line or the line below; an allow with a
// missing reason or an unknown analyzer is itself a diagnostic and
// suppresses nothing; an allow that suppresses nothing is stale and
// also a diagnostic.
package allowbad

import "errors"

func mightFail() error { return errors.New("boom") }

// goodAllowedAbove: suppressed by a justified allow on the line above.
func goodAllowedAbove() {
	//lint:allow errflow fixture demo: the error is intentionally dropped here
	mightFail()
}

// goodAllowedSameLine: suppressed by a justified allow on the same line.
func goodAllowedSameLine() {
	mightFail() //lint:allow errflow fixture demo: same-line allow
}

// badMissingReason: the allow is malformed — a justification is
// mandatory — so it reports AND fails to suppress.
func badMissingReason() {
	// want: lint:allow without a reason
	//lint:allow errflow
	// want: the errflow diagnostic survives the malformed allow
	mightFail()
}

// badUnknownAnalyzer: allows must name a real analyzer.
func badUnknownAnalyzer() {
	// want: lint:allow names unknown analyzer
	//lint:allow nosuchcheck some reason
	// want: the errflow diagnostic survives the bogus allow
	mightFail()
}

// badStale: the error below is handled, so the allow suppresses
// nothing and must be reported as stale instead of rotting in place.
func badStale() error {
	// want: stale allow
	//lint:allow errflow nothing here needs suppressing
	return mightFail()
}
