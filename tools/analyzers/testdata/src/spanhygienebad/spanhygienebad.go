// Package spanhygienebad is analyzer test fodder: obs spans that leak
// on a return path, get dropped or overwritten, and metrics with
// unstable names — everything spanhygiene must flag — next to the
// codebase's sanctioned patterns (End-per-branch, defer, ownership
// hand-off) it must accept.
package spanhygienebad

import (
	"errors"

	"primopt/internal/obs"
)

var errTest = errors.New("test")

// badMissedReturn ends the span on the happy path only.
func badMissedReturn(tr *obs.Trace, fail bool) error {
	sp := tr.Start("work")
	if fail {
		// want: early return leaks the span
		return errTest
	}
	sp.End()
	return nil
}

// badNeverEnded starts a span and walks away.
func badNeverEnded(tr *obs.Trace) {
	// want: span never ended before the function returns
	sp := tr.Start("leak")
	sp.SetAttr("k", 1)
}

// badReassigned overwrites a live handle: the first span can never be
// ended.
func badReassigned(tr *obs.Trace) {
	sp := tr.Start("first")
	// want: reassignment while the first span is open
	sp = tr.Start("second")
	sp.End()
}

// badDiscarded drops the handle on the floor.
func badDiscarded(tr *obs.Trace) {
	// want: span started and immediately discarded
	tr.Start("dropped")
}

// badLoopLeak: on every iteration but the first, the span survives
// into the next iteration.
func badLoopLeak(tr *obs.Trace, n int) {
	for i := 0; i < n; i++ {
		// want: span started inside a loop not ended each iteration
		sp := tr.Start("iter")
		if i == 0 {
			sp.End()
		}
	}
}

// badMetricName registers under a name that varies at runtime.
func badMetricName(tr *obs.Trace, site string) {
	// want: non-constant metric name
	tr.Counter("x." + site).Inc()
}

// goodBranches is the flow.go style: every branch ends the span
// before returning.
func goodBranches(tr *obs.Trace, fail bool) error {
	sp := tr.Start("work")
	if fail {
		sp.End()
		return errTest
	}
	sp.End()
	return nil
}

// goodDefer covers every exit, panics included.
func goodDefer(tr *obs.Trace) {
	sp := tr.Start("work")
	defer sp.End()
	sp.SetAttr("k", 2)
}

// holder takes over the End obligation.
type holder struct{ sp *obs.Span }

// goodEscape hands the span to its new owner.
func goodEscape(tr *obs.Trace) *holder {
	sp := tr.Start("owned-elsewhere")
	return &holder{sp: sp}
}

// goodLoop balances Start/End every iteration.
func goodLoop(tr *obs.Trace, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Start("iter")
		sp.SetAttr("i", i)
		sp.End()
	}
}

// goodConstMetric uses the stable literal names checktrace keys on.
func goodConstMetric(tr *obs.Trace) {
	tr.Counter("pkg.subsystem.ok").Inc()
}
