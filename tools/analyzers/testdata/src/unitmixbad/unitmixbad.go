// Package unitmixbad is analyzer test fodder: it mixes nanometer
// geometry with SI-scale values in ways unitmix must flag, next to
// correct scale conversions it must accept.
package unitmixbad

import (
	"primopt/internal/geom"
	"primopt/internal/pdk"
	"primopt/internal/units"
)

func bad(t *pdk.Tech, r geom.Rect) float64 {
	// want: nm + SI without conversion
	return float64(r.W()) + 3e-15
}

func badParse(r geom.Rect) float64 {
	v, _ := units.Parse("10f")
	// want: units.Parse result added to raw nm
	return v + float64(r.H())
}

func badField(t *pdk.Tech) float64 {
	// want: pdk field in nm added to an SI constant
	return 1e-9 - float64(t.FinPitch)
}

func good(t *pdk.Tech, r geom.Rect) float64 {
	// Converted before adding: carries both markers, accepted.
	return float64(r.W())*1e-9 + 3e-15
}

func goodPureNano(r geom.Rect) float64 {
	// Both sides nanometers: accepted.
	return float64(r.W()) + float64(r.H())
}

func goodPureSI() float64 {
	a, _ := units.Parse("1p")
	return a + 2e-15
}
