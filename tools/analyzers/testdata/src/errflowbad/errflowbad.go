// Package errflowbad is analyzer test fodder: discarded errors and
// bare panics the way errflow must flag in flow-reachable code, next
// to the Must* builder-invariant allowlist and nil-error writers it
// must accept.
package errflowbad

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

func mightFail(b bool) error {
	if b {
		return errors.New("boom")
	}
	return nil
}

func value() (int, error) { return 1, nil }

// badBlank throws the error slot away.
func badBlank() int {
	// want: error assigned to blank
	v, _ := value()
	return v
}

// badDirectBlank discards a lone error result.
func badDirectBlank() {
	// want: single error to blank
	_ = mightFail(true)
}

// badDropped never even looks at the result.
func badDropped() {
	// want: call statement discards the error
	mightFail(false)
}

// badDeferred is the classic deferred-Close leak.
func badDeferred(c io.Closer) {
	// want: deferred error discarded
	defer c.Close()
}

// badPanic panics from ordinary flow-reachable code.
func badPanic(x int) int {
	if x < 0 {
		// want: bare panic outside Must*
		panic("negative")
	}
	return x
}

// MustPositive may panic: the Must* prefix is the documented builder
// invariant (circuit.MustAdd, units.MustParse).
func MustPositive(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// goodBuilder writes into sinks whose errors are defined to be nil.
func goodBuilder() string {
	var b strings.Builder
	b.WriteString("hello ")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

// goodHandled propagates.
func goodHandled() error {
	if err := mightFail(true); err != nil {
		return err
	}
	return nil
}
