// Package ctxpollbad is analyzer test fodder: unbounded solver loops
// that never poll for cancellation, the way ctxpoll must flag, next
// to polling and statically bounded loops it must accept.
package ctxpollbad

import "context"

// badInfinite spins forever with no way to cancel it.
func badInfinite(work func() bool) {
	// want: infinite loop without a poll
	for {
		if work() {
			continue
		}
	}
}

// badCondOnly converges on a data condition with no cancellation
// check — a hung Newton iteration would hang the request.
func badCondOnly(ctx context.Context, step func() float64) float64 {
	x := 1.0
	// want: condition-only loop without a poll
	for x > 1e-9 {
		x = step()
	}
	_ = ctx
	return x
}

// goodDirectPoll checks ctx.Err in the body.
func goodDirectPoll(ctx context.Context, step func() float64) (float64, error) {
	x := 1.0
	for x > 1e-9 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		x = step()
	}
	return x, nil
}

// engine mimics spice.Engine: the loop polls through a same-package
// helper that reads the bound context.
type engine struct{ ctx context.Context }

func (e *engine) canceled() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

func (e *engine) goodHelperPoll(step func() float64) (float64, error) {
	x := 1.0
	for x > 1e-9 {
		if err := e.canceled(); err != nil {
			return 0, err
		}
		x = step()
	}
	return x, nil
}

// goodBounded: three-clause and range loops carry a static bound.
func goodBounded(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	for _, x := range xs {
		s += x
	}
	return s
}
