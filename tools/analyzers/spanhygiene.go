package analyzers

import (
	"go/ast"
	"go/types"
)

// SpanHygiene enforces the obs span and metric conventions the
// instrumentation of PRs 2-5 established by hand:
//
//   - every span a function starts (obs.StartSpan, Trace.Start,
//     Span.Start) is ended on every return path out of that function —
//     the checker walks the statement structure path-sensitively, so
//     the codebase's mid-function `sp.End()`-per-branch style passes
//     without rewriting it into defers;
//   - a span handle is not silently dropped (Start in expression
//     position with no End) or overwritten while still open;
//   - counters, gauges, and histograms are registered under constant
//     names, because the checktrace validator and the metrics table
//     key on stable metric names across runs.
//
// Handing a span to someone else — returning it, storing it in a
// struct or field (stage Params.Obs), capturing it in a goroutine —
// transfers the End obligation out of the function, so such spans are
// not tracked further. Passing a span as a plain call argument does
// not: the flow's convention is that the creator ends stage spans it
// passes down (flow.go ends psp after runPlacement returns).
var SpanHygiene = &Analyzer{
	Name: "spanhygiene",
	Doc: "flag obs spans not ended on every return path and metrics " +
		"registered under non-constant names",
	Run: runSpanHygiene,
}

const obsPkg = "primopt/internal/obs"

func runSpanHygiene(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeSpanBody(p, fd.Body)
		}
		// Every function literal is its own scope with its own End
		// obligations (worker goroutines start replica spans).
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzeSpanBody(p, fl.Body)
			}
			return true
		})
		checkMetricNames(p, f)
	}
}

// spanCreating reports whether call starts a span: a call to Start or
// StartSpan whose static result type is *obs.Span.
func spanCreating(p *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if name != "Start" && name != "StartSpan" {
		return false
	}
	tv, ok := p.Info.Types[call]
	return ok && tv.Type != nil && typeIs(tv.Type, obsPkg, "Span")
}

// endCallObj returns the span variable whose End() the expression
// calls, if it is exactly that shape.
func endCallObj(p *Pass, e ast.Expr) types.Object {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil || !typeIs(obj.Type(), obsPkg, "Span") {
		return nil
	}
	return obj
}

// spanFacts is the per-function prepass result.
type spanFacts struct {
	created  map[types.Object]bool // spans started in this body (outside nested literals)
	escaped  map[types.Object]bool // End obligation transferred elsewhere
	deferred map[types.Object]bool // ended by defer — covered on every path incl. panics
}

func collectSpanFacts(p *Pass, body *ast.BlockStmt) *spanFacts {
	fx := &spanFacts{
		created:  map[types.Object]bool{},
		escaped:  map[types.Object]bool{},
		deferred: map[types.Object]bool{},
	}
	// Creations and defers, excluding nested function literals (those
	// are analyzed as their own scopes).
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !spanCreating(p, call) || i >= len(x.Lhs) {
					continue
				}
				if obj := lhsObject(p, x.Lhs[i]); obj != nil {
					fx.created[obj] = true
				}
			}
		case *ast.DeferStmt:
			if obj := endCallObj(p, x.Call); obj != nil {
				fx.deferred[obj] = true
			}
		}
	})
	// Escapes: uses that transfer the End obligation.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			for _, obj := range identUses(p, x.Body) {
				if fx.created[obj] {
					fx.escaped[obj] = true
				}
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				for _, obj := range identUses(p, res) {
					if fx.created[obj] {
						fx.escaped[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				for _, obj := range identUses(p, elt) {
					if fx.created[obj] {
						fx.escaped[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			for _, obj := range identUses(p, x.Value) {
				if fx.created[obj] {
					fx.escaped[obj] = true
				}
			}
		case *ast.AssignStmt:
			// A bare span identifier on the right of an assignment
			// aliases or stores the handle (pp.Obs = sp, sp2 := sp).
			for _, rhs := range x.Rhs {
				if id, ok := rhs.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && fx.created[obj] {
						fx.escaped[obj] = true
					}
				}
			}
		}
		return true
	})
	return fx
}

func identUses(p *Pass, n ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// analyzeSpanBody walks one function body path-sensitively, tracking
// which started spans are still open, and reports spans that can
// reach a return (or the end of the function) without End.
func analyzeSpanBody(p *Pass, body *ast.BlockStmt) {
	fx := collectSpanFacts(p, body)
	tracked := func(obj types.Object) bool {
		return fx.created[obj] && !fx.escaped[obj] && !fx.deferred[obj]
	}
	st := map[types.Object]bool{}
	out, terminated := walkSpanStmts(p, body.List, st, fx, tracked)
	if !terminated {
		for obj := range out {
			p.Reportf(obj.Pos(),
				"span %s is not ended before the function returns", obj.Name())
		}
	}
}

func copyState(st map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// walkSpanStmts interprets a statement list over the open-span state.
// It returns the fall-through state and whether every path through
// the list terminates (return / panic / branch).
func walkSpanStmts(p *Pass, stmts []ast.Stmt, st map[types.Object]bool, fx *spanFacts, tracked func(types.Object) bool) (map[types.Object]bool, bool) {
	for _, s := range stmts {
		var term bool
		st, term = walkSpanStmt(p, s, st, fx, tracked)
		if term {
			return st, true
		}
	}
	return st, false
}

func walkSpanStmt(p *Pass, s ast.Stmt, st map[types.Object]bool, fx *spanFacts, tracked func(types.Object) bool) (map[types.Object]bool, bool) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range x.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !spanCreating(p, call) || i >= len(x.Lhs) {
				continue
			}
			obj := lhsObject(p, x.Lhs[i])
			if obj == nil || !tracked(obj) {
				continue
			}
			if st[obj] {
				p.Reportf(x.Pos(),
					"span %s reassigned while still open: the previous span is never ended", obj.Name())
			}
			st[obj] = true
		}
	case *ast.ExprStmt:
		if obj := endCallObj(p, x.X); obj != nil {
			delete(st, obj)
			break
		}
		if call, ok := x.X.(*ast.CallExpr); ok {
			if spanCreating(p, call) {
				p.Reportf(x.Pos(),
					"span started and immediately discarded: keep the handle and End it")
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					return st, true
				}
			}
		}
	case *ast.ReturnStmt:
		for obj := range st {
			p.Reportf(x.Pos(),
				"span %s is not ended on this return path", obj.Name())
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.BlockStmt:
		return walkSpanStmts(p, x.List, st, fx, tracked)
	case *ast.LabeledStmt:
		return walkSpanStmt(p, x.Stmt, st, fx, tracked)
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = walkSpanStmt(p, x.Init, st, fx, tracked)
		}
		thenSt, thenTerm := walkSpanStmts(p, x.Body.List, copyState(st), fx, tracked)
		elseSt, elseTerm := copyState(st), false
		if x.Else != nil {
			elseSt, elseTerm = walkSpanStmt(p, x.Else, elseSt, fx, tracked)
		}
		return mergeStates(thenSt, thenTerm, elseSt, elseTerm)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return walkCaseBodies(p, s, st, fx, tracked)
	case *ast.SelectStmt:
		return walkSelect(p, x, st, fx, tracked)
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = walkSpanStmt(p, x.Init, st, fx, tracked)
		}
		walkLoopBody(p, x.Body, st, fx, tracked)
		return st, false
	case *ast.RangeStmt:
		walkLoopBody(p, x.Body, st, fx, tracked)
		return st, false
	}
	return st, false
}

// walkLoopBody checks a loop body with the loop-entry state and
// reports spans started inside the body that are still open when the
// body falls through to the next iteration — each iteration would
// leak one. The after-loop state is the entry state: the loop may run
// zero times, so spans open before it stay the caller's problem.
func walkLoopBody(p *Pass, body *ast.BlockStmt, entry map[types.Object]bool, fx *spanFacts, tracked func(types.Object) bool) {
	bodyOut, term := walkSpanStmts(p, body.List, copyState(entry), fx, tracked)
	if term {
		return
	}
	for obj := range bodyOut {
		if !entry[obj] {
			p.Reportf(obj.Pos(),
				"span %s started inside a loop is not ended before the next iteration", obj.Name())
		}
	}
}

func mergeStates(aSt map[types.Object]bool, aTerm bool, bSt map[types.Object]bool, bTerm bool) (map[types.Object]bool, bool) {
	switch {
	case aTerm && bTerm:
		return map[types.Object]bool{}, true
	case aTerm:
		return bSt, false
	case bTerm:
		return aSt, false
	}
	for obj := range bSt {
		aSt[obj] = true
	}
	return aSt, false
}

// walkCaseBodies handles switch and type-switch: each case body runs
// with a copy of the entry state; without a default, fallthrough of
// the entry state itself is a possible path.
func walkCaseBodies(p *Pass, s ast.Stmt, st map[types.Object]bool, fx *spanFacts, tracked func(types.Object) bool) (map[types.Object]bool, bool) {
	var body *ast.BlockStmt
	var initStmt ast.Stmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		body, initStmt = x.Body, x.Init
	case *ast.TypeSwitchStmt:
		body, initStmt = x.Body, x.Init
	default:
		return st, false
	}
	if initStmt != nil {
		st, _ = walkSpanStmt(p, initStmt, st, fx, tracked)
	}
	merged, term := map[types.Object]bool{}, true
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cSt, cTerm := walkSpanStmts(p, cc.Body, copyState(st), fx, tracked)
		merged, term = mergeStates(merged, term, cSt, cTerm)
	}
	if !hasDefault {
		merged, term = mergeStates(merged, term, st, false)
	}
	return merged, term
}

func walkSelect(p *Pass, x *ast.SelectStmt, st map[types.Object]bool, fx *spanFacts, tracked func(types.Object) bool) (map[types.Object]bool, bool) {
	merged, term := map[types.Object]bool{}, true
	any := false
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		cSt, cTerm := walkSpanStmts(p, cc.Body, copyState(st), fx, tracked)
		merged, term = mergeStates(merged, term, cSt, cTerm)
	}
	if !any {
		return st, false
	}
	return merged, term
}

// checkMetricNames flags Counter/Gauge/Histogram registrations whose
// name argument is not a compile-time constant.
func checkMetricNames(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
		default:
			return true
		}
		recv, ok := p.Info.Types[sel.X]
		if !ok || recv.Type == nil || !typeIs(recv.Type, obsPkg, "Trace") {
			return true
		}
		if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value == nil {
			p.Reportf(call.Args[0].Pos(),
				"metric registered with a non-constant name: checktrace and the metrics table key on stable names; "+
					"use a literal, or //lint:allow spanhygiene if the dynamic name set is finite and stable")
		}
		return true
	})
}
