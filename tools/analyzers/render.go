package analyzers

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// JSONDiagnostic is the machine-readable form one diagnostic takes
// under the driver's -json flag.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToJSON renders diagnostics as an indented JSON array (always an
// array, "[]" when clean, so CI consumers can parse unconditionally).
func ToJSON(fset *token.FileSet, diags []Diagnostic) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Summary renders the one-line per-analyzer tally the driver prints
// on exit, e.g.:
//
//	analyze: FAIL detorder=2 errflow=1 (3 diagnostics)
//	analyze: ok (31 packages, 7 analyzers)
//
// The analyzer=count pairs are sorted by name so the line is stable
// and greppable in CI logs.
func Summary(diags []Diagnostic, packages, analyzers int) string {
	if len(diags) == 0 {
		return fmt.Sprintf("analyze: ok (%d packages, %d analyzers)", packages, analyzers)
	}
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, counts[n]))
	}
	noun := "diagnostics"
	if len(diags) == 1 {
		noun = "diagnostic"
	}
	return fmt.Sprintf("analyze: FAIL %s (%d %s)", strings.Join(parts, " "), len(diags), noun)
}
