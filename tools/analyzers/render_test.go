package analyzers

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestToJSON round-trips diagnostics through the -json output shape.
func TestToJSON(t *testing.T) {
	p, fset := loadPkg(t, "primopt/tools/analyzers/testdata/src/errflowbad")
	diags := Analyze(p, fset, []*Analyzer{ErrFlow})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	data, err := ToJSON(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != len(diags) {
		t.Fatalf("%d JSON records, want %d", len(out), len(diags))
	}
	for _, d := range out {
		if d.Analyzer != "errflow" {
			t.Errorf("analyzer = %q, want errflow", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete record: %+v", d)
		}
		if !strings.HasSuffix(d.File, "errflowbad.go") {
			t.Errorf("file = %q, want the fixture file", d.File)
		}
	}
}

// TestToJSONEmpty: clean runs still emit a parseable array.
func TestToJSONEmpty(t *testing.T) {
	data, err := ToJSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Errorf("empty diagnostics render as %q, want []", got)
	}
}

// TestSummary pins the greppable summary-line format.
func TestSummary(t *testing.T) {
	if got := Summary(nil, 31, 7); got != "analyze: ok (31 packages, 7 analyzers)" {
		t.Errorf("clean summary = %q", got)
	}
	diags := []Diagnostic{
		{Analyzer: "errflow"},
		{Analyzer: "detorder"},
		{Analyzer: "detorder"},
	}
	got := Summary(diags, 31, 7)
	want := "analyze: FAIL detorder=2 errflow=1 (3 diagnostics)"
	if got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
	one := Summary(diags[:1], 1, 1)
	if !strings.HasSuffix(one, "(1 diagnostic)") {
		t.Errorf("singular summary = %q", one)
	}
}
