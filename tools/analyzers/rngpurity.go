package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// RngPurity flags wall-clock reads and global-randomness draws in the
// deterministic solver packages. The flow's reproducibility contract
// (the fingerprint tests pinned in PRs 4-5: byte-identical layouts
// for a fixed seed, across worker counts, traced or untraced) only
// holds if every random draw comes from an explicitly seeded
// rand.New(rand.NewSource(seed)) stream and no result value depends
// on time.Now. A seeded local source is fine; the package-level
// math/rand functions draw from the process-global source, and
// time.Now/Since read state outside the (seed, input) function the
// tests pin.
//
// Timing reads that feed only the obs trace or reporting metadata are
// legitimate — those sites carry a //lint:allow rngpurity with the
// justification, which keeps each one an explicit, reviewed decision.
var RngPurity = &Analyzer{
	Name: "rngpurity",
	Doc: "flag wall-clock reads and global math/rand draws in " +
		"deterministic solver packages",
	Run: runRngPurity,
}

// rngScope is the set of package-path prefixes whose results must be
// a pure function of (seed, inputs).
var rngScope = []string{
	"primopt/internal/spice",
	"primopt/internal/place",
	"primopt/internal/route",
	"primopt/internal/optimize",
	"primopt/internal/flow",
}

// inFixture reports whether the package is analyzer test fodder —
// fixtures are always in scope for every analyzer, whatever tree
// position they model.
func inFixture(path string) bool {
	return strings.Contains(path, "/testdata/src/")
}

func inRngScope(path string) bool {
	if inFixture(path) {
		return true
	}
	for _, p := range rngScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// globalRandFuncs are the package-level math/rand (and /v2) functions
// that draw from the shared global source. Constructors of explicit
// sources (New, NewSource, NewPCG, NewChaCha8) are the sanctioned
// alternative and are not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runRngPurity(p *Pass) {
	if !inRngScope(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand carry
			// their own source and are fine.
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch objPkgPath(obj) {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					p.Reportf(sel.Pos(),
						"time.%s in deterministic solver package: results must be a pure function of (seed, inputs); "+
							"if this feeds only trace/reporting metadata, justify with //lint:allow rngpurity",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					p.Reportf(sel.Pos(),
						"global math/rand source (rand.%s) in deterministic solver package: draw from an explicitly seeded rand.New(rand.NewSource(seed))",
						fn.Name())
				}
			}
			return true
		})
	}
}
