* five-transistor OTA (hand-written deck for spicetool)
.param vddv=0.8 vcm=0.45
Vdd vdd 0 vddv
Vip inp 0 DC vcm AC 0.5
Vin inn 0 DC vcm AC 0.5 180
Ib vdd bias 40u

* tail mirror
Mt1 bias bias 0 0 nmos nfin=6 nf=10 m=2
Mt2 tail bias 0 0 nmos nfin=6 nf=10 m=4

* input pair
M1 o1  inp tail 0 nmos nfin=6 nf=10 m=4
M2 out inn tail 0 nmos nfin=6 nf=10 m=4

* active PMOS mirror load
M3 o1  o1 vdd vdd pmos nfin=8 nf=10 m=2
M4 out o1 vdd vdd pmos nfin=8 nf=10 m=2

Cl out 0 20f

.op
.ac dec 10 1e5 1e12
.measure ac gdc find vdb(out) at=1meg
.measure ac ugf when vdb(out)=0
.end
