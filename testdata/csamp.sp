* self-biased common-source stage
Vdd vdd 0 0.8
Vin ins 0 DC 0 AC 1
Cc ins in 1n
Rf out in 10meg
Vbp bp 0 0.42
M1 out in 0 0 nmos nfin=8 nf=8 m=1
M2 out bp vdd vdd pmos nfin=8 nf=16 m=1
Cl out 0 20f
.op
.ac dec 10 1meg 1t
.measure ac gdc find vdb(out) at=10meg
.end
