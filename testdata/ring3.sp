* three-stage ring oscillator
.subckt inv in out vdd
Mp out in vdd vdd pmos nfin=4 nf=1 m=1
Mn out in 0 0 nmos nfin=4 nf=1 m=1
Cload out 0 4f
.ends
Vdd vdd 0 0.8
X1 n1 n2 vdd inv
X2 n2 n3 vdd inv
X3 n3 n1 vdd inv
.ic v(n1)=0.8
.tran 2p 3n uic
.measure tran swing pp v(n1) from=1n to=3n
.end
